package shm

import (
	"errors"
	"sync"
	"testing"
)

func TestCreateGetAttachDetach(t *testing.T) {
	var r Registry
	seg, err := r.Create(1, 4096, "payload")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Size != 4096 || seg.Payload != "payload" {
		t.Fatalf("segment fields wrong: %+v", seg)
	}
	got, err := r.Get(1)
	if err != nil || got != seg {
		t.Fatalf("Get(1) = %v, %v", got, err)
	}
	if _, err := r.Attach(1, 0, 0x7000_0000); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Attach(1, 1, 0x8000_0000); err != nil {
		t.Fatal(err)
	}
	if n := seg.Attached(); n != 2 {
		t.Fatalf("Attached = %d, want 2", n)
	}
	if a := seg.AddrIn(0); a != 0x7000_0000 {
		t.Fatalf("AddrIn(0) = %#x", a)
	}
	if a := seg.AddrIn(1); a != 0x8000_0000 {
		t.Fatalf("AddrIn(1) = %#x", a)
	}
	if err := r.Detach(1, 0); err != nil {
		t.Fatal(err)
	}
	if n := seg.Attached(); n != 1 {
		t.Fatalf("Attached = %d after detach, want 1", n)
	}
}

func TestCreateDuplicateKeyFails(t *testing.T) {
	var r Registry
	if _, err := r.Create(7, 8, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(7, 8, nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Create err = %v, want ErrExists", err)
	}
}

func TestGetMissingKey(t *testing.T) {
	var r Registry
	if _, err := r.Get(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(99) err = %v, want ErrNotFound", err)
	}
}

func TestDetachWithoutAttach(t *testing.T) {
	var r Registry
	r.Create(1, 8, nil)
	if err := r.Detach(1, 0); !errors.Is(err, ErrDetached) {
		t.Fatalf("Detach err = %v, want ErrDetached", err)
	}
}

func TestRemoveDeferredUntilLastDetach(t *testing.T) {
	var r Registry
	r.Create(1, 8, nil)
	r.Attach(1, 0, 0x1000)
	if err := r.Remove(1); err != nil {
		t.Fatal(err)
	}
	// Segment still reachable while attached (Linux semantics).
	if _, err := r.Get(1); err != nil {
		t.Fatalf("segment vanished while attached: %v", err)
	}
	// But new attaches must fail.
	if _, err := r.Attach(1, 1, 0x2000); !errors.Is(err, ErrRemoved) {
		t.Fatalf("Attach after Remove err = %v, want ErrRemoved", err)
	}
	if err := r.Detach(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("segment survived last detach: err = %v", err)
	}
}

func TestRemoveUnattachedDestroysImmediately(t *testing.T) {
	var r Registry
	r.Create(1, 8, nil)
	if err := r.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unattached segment not destroyed: err = %v", err)
	}
}

func TestKeys(t *testing.T) {
	var r Registry
	r.Create(1, 8, nil)
	r.Create(2, 8, nil)
	if got := len(r.Keys()); got != 2 {
		t.Fatalf("Keys() has %d entries, want 2", got)
	}
}

func TestConcurrentAttachDetach(t *testing.T) {
	var r Registry
	seg, _ := r.Create(1, 8, nil)
	var wg sync.WaitGroup
	for v := 0; v < 16; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := r.Attach(1, v, uint64(v)<<32); err != nil {
					t.Errorf("attach: %v", err)
					return
				}
				if err := r.Detach(1, v); err != nil {
					t.Errorf("detach: %v", err)
					return
				}
			}
		}(v)
	}
	wg.Wait()
	if n := seg.Attached(); n != 0 {
		t.Fatalf("Attached = %d after balanced attach/detach", n)
	}
}
