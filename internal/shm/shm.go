// Package shm simulates the System V shared memory interface (shmget /
// shmat / shmdt / shmctl) that the paper's synchronization agents use to
// attach to the sync buffers the monitor creates (§4.5).
//
// In the paper, the monitor allocates a segment and each variant's agent
// attaches to it by key; the monitor additionally maps the segment at a
// different, non-overlapping address in every variant (§5.4). Here a
// segment carries an arbitrary shared object plus a per-variant "mapping
// address" so the address-diversity property is preserved and testable.
package shm

import (
	"errors"
	"fmt"
	"sync"
)

// Common System-V-style errors.
var (
	ErrNotFound = errors.New("shm: no segment with that key (ENOENT)")
	ErrExists   = errors.New("shm: segment already exists (EEXIST)")
	ErrDetached = errors.New("shm: segment not attached by this variant (EINVAL)")
	ErrRemoved  = errors.New("shm: segment marked for removal (EIDRM)")
)

// Key identifies a segment, like a System V IPC key.
type Key uint64

// Segment is a shared memory segment. Payload is the shared object (for the
// MVEE: a sync buffer, a syscall buffer, or a raw byte slice); it is the
// same object in every variant, which is exactly what "shared memory" means
// in this simulation.
type Segment struct {
	Key     Key
	Size    int
	Payload any

	mu       sync.Mutex
	attached map[int]uint64 // variant id -> mapped virtual address
	removed  bool
	nattach  int
}

// Attached reports how many attachments the segment currently has.
func (s *Segment) Attached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nattach
}

// AddrIn returns the virtual address at which variant v mapped the segment,
// or 0 if v is not attached.
func (s *Segment) AddrIn(variant int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attached[variant]
}

// Registry is a namespace of segments, analogous to the kernel's IPC
// namespace. The zero value is ready to use.
type Registry struct {
	mu       sync.Mutex
	segments map[Key]*Segment
}

// Create allocates a new segment under key (shmget with IPC_CREAT|IPC_EXCL).
func (r *Registry) Create(key Key, size int, payload any) (*Segment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.segments == nil {
		r.segments = make(map[Key]*Segment)
	}
	if _, ok := r.segments[key]; ok {
		return nil, fmt.Errorf("key %d: %w", key, ErrExists)
	}
	seg := &Segment{Key: key, Size: size, Payload: payload, attached: make(map[int]uint64)}
	r.segments[key] = seg
	return seg, nil
}

// Get looks up an existing segment (shmget without IPC_CREAT).
func (r *Registry) Get(key Key) (*Segment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	seg, ok := r.segments[key]
	if !ok {
		return nil, fmt.Errorf("key %d: %w", key, ErrNotFound)
	}
	return seg, nil
}

// Attach maps the segment into variant's address space at addr (shmat). The
// monitor chooses addr so that the mapping does not overlap across variants.
func (r *Registry) Attach(key Key, variant int, addr uint64) (*Segment, error) {
	seg, err := r.Get(key)
	if err != nil {
		return nil, err
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if seg.removed {
		return nil, fmt.Errorf("key %d: %w", key, ErrRemoved)
	}
	seg.attached[variant] = addr
	seg.nattach++
	return seg, nil
}

// Detach unmaps the segment from variant (shmdt). When a segment marked for
// removal loses its last attachment it is destroyed.
func (r *Registry) Detach(key Key, variant int) error {
	seg, err := r.Get(key)
	if err != nil {
		return err
	}
	seg.mu.Lock()
	if _, ok := seg.attached[variant]; !ok {
		seg.mu.Unlock()
		return fmt.Errorf("key %d variant %d: %w", key, variant, ErrDetached)
	}
	delete(seg.attached, variant)
	seg.nattach--
	destroy := seg.removed && seg.nattach == 0
	seg.mu.Unlock()
	if destroy {
		r.mu.Lock()
		delete(r.segments, key)
		r.mu.Unlock()
	}
	return nil
}

// Remove marks the segment for removal (shmctl IPC_RMID). The segment
// disappears once all attachments are gone, like in Linux.
func (r *Registry) Remove(key Key) error {
	seg, err := r.Get(key)
	if err != nil {
		return err
	}
	seg.mu.Lock()
	seg.removed = true
	destroy := seg.nattach == 0
	seg.mu.Unlock()
	if destroy {
		r.mu.Lock()
		delete(r.segments, key)
		r.mu.Unlock()
	}
	return nil
}

// Keys returns the keys of all live segments, for diagnostics.
func (r *Registry) Keys() []Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]Key, 0, len(r.segments))
	for k := range r.segments {
		keys = append(keys, k)
	}
	return keys
}
