package bugbench

import (
	"reflect"
	"testing"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/workload"
)

// seeds is the determinism sweep: every entry must reach its annotated
// verdict under each of these seeds (different layouts, same schedule
// forcing), per the acceptance criteria.
var seeds = []int64{1, 2, 3, 4, 5}

func TestAnnotationRoundTrip(t *testing.T) {
	for _, e := range Corpus() {
		a, err := ParseAnnotation(e.Annot)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if got := a.String(); got != e.Annot {
			t.Errorf("%s: annotation not canonical: stored %q, canonical %q", e.Name, e.Annot, got)
		}
		b, err := ParseAnnotation(a.String())
		if err != nil {
			t.Fatalf("%s: reparse: %v", e.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: round trip changed the annotation: %+v vs %+v", e.Name, a, b)
		}
	}
}

func TestAnnotationRejects(t *testing.T) {
	for _, bad := range []string{
		"",                          // no expect
		"expect=wedged",             // unknown verdict
		"expect deadlock",           // not key=value
		"expect=deadlock cycle=1,2", // missing t prefix
		"expect=deadlock cycle=tx",  // non-numeric tid
		"expect=deadlock expect-divergence=maybe", // unknown divergence mode
		"expect=clean color=red",                  // unknown key
	} {
		if _, err := ParseAnnotation(bad); err == nil {
			t.Errorf("ParseAnnotation(%q) accepted", bad)
		}
	}
}

// TestCorpusShape pins the corpus composition the acceptance criteria name:
// at least 12 deadlock reproductions, plus clean and divergence controls,
// under unique names.
func TestCorpusShape(t *testing.T) {
	counts := map[string]int{}
	names := map[string]bool{}
	for _, e := range Corpus() {
		if names[e.Name] {
			t.Fatalf("duplicate entry name %q", e.Name)
		}
		names[e.Name] = true
		a, err := ParseAnnotation(e.Annot)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		counts[a.Expect]++
	}
	if counts["deadlock"] < 12 {
		t.Errorf("corpus has %d deadlock entries, want >= 12", counts["deadlock"])
	}
	if counts["clean"] < 1 || counts["divergence"] < 1 {
		t.Errorf("corpus lacks controls: %v", counts)
	}
}

// TestCorpusVerdicts runs every entry under every seed and asserts the
// session's verdict — outcome, cycle, and divergence channel — matches the
// entry's annotation.
func TestCorpusVerdicts(t *testing.T) {
	for _, e := range Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				if err := Check(e, seed); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestArmedDetectorNoFalsePositiveOnWorkloads runs real (live, terminating)
// workload shapes with the detector armed: none may be reported as
// deadlocked or diverged. This is the corpus's negative space — the
// guarantee that arming the detector in production costs no spurious kills.
func TestArmedDetectorNoFalsePositiveOnWorkloads(t *testing.T) {
	for _, name := range []string{"dedup", "facesim", "radiosity", "water_nsquared"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog := b.Build(workload.Params{Workers: 4, Units: 400, WorkPerUnit: 30})
			res := core.Run(core.Options{
				Variants:        2,
				Agent:           agent.WallOfClocks,
				ASLR:            true,
				DCL:             true,
				Seed:            7,
				DetectDeadlocks: true,
			}, prog)
			if res.Deadlock != nil {
				t.Fatalf("false positive: %v", res.Deadlock)
			}
			if res.Divergence != nil {
				t.Fatalf("unexpected divergence: %v", res.Divergence)
			}
			if res.Panic != nil {
				t.Fatalf("panic: %v", res.Panic)
			}
		})
	}
}
