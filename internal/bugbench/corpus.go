package bugbench

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/synclib"
)

// Corpus returns the annotated bug reproductions, in a fixed order. Every
// deadlock entry forces its interleaving with explicit rendezvous (barriers
// or blocking reads), so the verdict — and for lock-shaped bugs the cycle —
// is the same for every seed. Tids are deterministic too: the main thread
// is t0 and Spawn/Fork allocate tids through the ordered clone/fork
// syscalls, so the Nth spawn is tid N in every variant of every run.
func Corpus() []Entry {
	return []Entry{
		{
			Name:  "double-lock",
			Annot: "expect=deadlock cycle=t0 expect-divergence=none",
			Main: func(t *core.Thread) {
				m := synclib.NewMutex(t)
				m.Lock(t)
				m.Lock(t) // non-recursive mutex re-acquired: waits on itself
			},
		},
		{
			Name:  "abba-inversion",
			Annot: "expect=deadlock cycle=t1,t2 expect-divergence=none",
			Main: func(t *core.Thread) {
				a, b := synclib.NewMutex(t), synclib.NewMutex(t)
				bar := synclib.NewBarrier(t, 2)
				t.Spawn(func(w *core.Thread) {
					a.Lock(w)
					bar.Wait(w) // both first locks held before either second
					b.Lock(w)
				})
				t.Spawn(func(w *core.Thread) {
					b.Lock(w)
					bar.Wait(w)
					a.Lock(w)
				})
			},
		},
		{
			Name:  "cond-lost-wakeup",
			Annot: "expect=deadlock expect-divergence=none",
			Main: func(t *core.Thread) {
				m := synclib.NewMutex(t)
				c := synclib.NewCond(t)
				bar := synclib.NewBarrier(t, 2)
				t.Spawn(func(w *core.Thread) {
					bar.Wait(w) // the signal below has already fired
					m.Lock(w)
					c.Wait(w, m) // nothing will ever move the sequence again
				})
				c.Signal(t) // no waiter yet: the wakeup is lost
				bar.Wait(t)
			},
		},
		{
			Name:  "rwlock-upgrade",
			Annot: "expect=deadlock cycle=t0 expect-divergence=none",
			Main: func(t *core.Thread) {
				rw := synclib.NewRWMutex(t)
				rw.RLock(t)
				rw.Lock(t) // waits for readers to drain — including itself
			},
		},
		{
			Name:  "waitgroup-miscount",
			Annot: "expect=deadlock expect-divergence=none",
			Main: func(t *core.Thread) {
				wg := synclib.NewWaitGroup(t)
				bar := synclib.NewBarrier(t, 2)
				wg.Add(t, 2) // two completions promised, one worker exists
				t.Spawn(func(w *core.Thread) {
					wg.Done(w)
					bar.Wait(w)
				})
				bar.Wait(t)
				wg.Wait(t) // the counter is stuck at 1
			},
		},
		{
			Name:  "pipe-read-cycle",
			Annot: "expect=deadlock expect-divergence=none",
			Main: func(t *core.Thread) {
				p1 := t.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
				p2 := t.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
				// Each side reads before it writes: both consume-then-produce
				// loops start empty, so neither producer is ever reached.
				t.Spawn(func(w *core.Thread) {
					w.Syscall(kernel.SysRead, [6]uint64{p1.Val, 16}, nil)
					w.Syscall(kernel.SysWrite, [6]uint64{p2.Val2}, []byte("x"))
				})
				t.Spawn(func(w *core.Thread) {
					w.Syscall(kernel.SysRead, [6]uint64{p2.Val, 16}, nil)
					w.Syscall(kernel.SysWrite, [6]uint64{p1.Val2}, []byte("x"))
				})
			},
		},
		{
			Name:  "write-full-holding-lock",
			Annot: "expect=deadlock expect-divergence=none",
			Main: func(t *core.Thread) {
				pr := t.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
				m := synclib.NewMutex(t)
				bar := synclib.NewBarrier(t, 2)
				t.Spawn(func(w *core.Thread) {
					m.Lock(w)
					bar.Wait(w)
					// Overfills the pipe and sleeps for space, lock held.
					w.Syscall(kernel.SysWrite, [6]uint64{pr.Val2}, make([]byte, 1<<20))
				})
				t.Spawn(func(w *core.Thread) {
					bar.Wait(w)
					m.Lock(w) // the drainer needs the lock the writer holds
					w.Syscall(kernel.SysRead, [6]uint64{pr.Val, 1 << 20}, nil)
					m.Unlock(w)
				})
			},
		},
		{
			Name:  "barrier-desertion",
			Annot: "expect=deadlock expect-divergence=none",
			Main: func(t *core.Thread) {
				bar := synclib.NewBarrier(t, 3)
				t.Spawn(func(w *core.Thread) { bar.Wait(w) })
				t.Spawn(func(w *core.Thread) { bar.Wait(w) })
				// The third party never arrives.
			},
		},
		{
			Name:  "fork-child-exit-lock",
			Annot: "expect=deadlock expect-divergence=none",
			Main: func(t *core.Thread) {
				// The mutex models a lock in MAP_SHARED memory: the forked
				// child locks it and exits without unlocking (process exit
				// does not release userspace locks), orphaning it forever.
				m := synclib.NewMutex(t)
				ch := t.Fork(func(c *core.Thread) {
					m.Lock(c)
				})
				if ch == nil {
					return
				}
				t.Waitpid(ch.Pid) // child fully exited, lock still held
				m.Lock(t)
			},
		},
		{
			Name:  "eintr-masked-wait",
			Annot: "expect=deadlock expect-divergence=none",
			Main: func(t *core.Thread) {
				pr := t.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
				t.Sigaction(kernel.SIGUSR1, func(*core.Thread, int) {})
				ch := t.Fork(func(c *core.Thread) {
					// Child: waits for bytes that never come.
					c.Syscall(kernel.SysRead, [6]uint64{pr.Val, 16}, nil)
				})
				if ch == nil {
					return
				}
				// A self-signal can surface the first wait as EINTR; the
				// standard retry loop masks it and blocks again — the retried
				// wait must still count toward the verdict.
				t.Kill(t.Getpid(), kernel.SIGUSR1)
				for {
					if _, _, errno := t.Waitpid(ch.Pid); errno != kernel.EINTR {
						return // unreachable: the child never exits
					}
				}
			},
		},
		{
			Name:  "poll-self-cycle",
			Annot: "expect=deadlock expect-divergence=none",
			Main: func(t *core.Thread) {
				pr := t.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
				// Untimed poll on a pipe whose only writer is the poller
				// itself: readiness can never arrive from anywhere.
				buf := make([]byte, kernel.PollFDSize)
				kernel.EncodePollFD(buf, 0, int(pr.Val), kernel.PollIn)
				t.Syscall(kernel.SysPoll, [6]uint64{1, kernel.PollNoTimeout}, buf)
			},
		},
		{
			Name:  "semaphore-leak",
			Annot: "expect=deadlock expect-divergence=none",
			Main: func(t *core.Thread) {
				sem := synclib.NewSemaphore(t, 1)
				bar := synclib.NewBarrier(t, 2)
				t.Spawn(func(w *core.Thread) {
					sem.Acquire(w)
					bar.Wait(w) // exits without releasing
				})
				bar.Wait(t)
				sem.Acquire(t) // the count stays 0 forever
			},
		},
		{
			Name:  "once-reentry",
			Annot: "expect=deadlock cycle=t0 expect-divergence=none",
			Main: func(t *core.Thread) {
				o := synclib.NewOnce(t)
				var reenter func()
				reenter = func() {
					o.Do(t, func() {}) // waits for the in-flight Do: itself
				}
				o.Do(t, reenter)
			},
		},
		{
			Name:  "clean-mutex-handoff",
			Annot: "expect=clean expect-divergence=none",
			Main: func(t *core.Thread) {
				m := synclib.NewMutex(t)
				c := synclib.NewCond(t)
				ready := t.NewSyncVar()
				h := t.Spawn(func(w *core.Thread) {
					m.Lock(w)
					for w.Load(ready) == 0 {
						c.Wait(w, m)
					}
					m.Unlock(w)
				})
				m.Lock(t)
				t.Store(ready, 1)
				c.Broadcast(t)
				m.Unlock(t)
				h.Join()
			},
		},
		{
			Name:  "clean-pipe-pingpong",
			Annot: "expect=clean expect-divergence=none",
			Main: func(t *core.Thread) {
				p1 := t.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
				p2 := t.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
				const rounds = 50
				a := t.Spawn(func(w *core.Thread) {
					for i := 0; i < rounds; i++ {
						w.Syscall(kernel.SysWrite, [6]uint64{p1.Val2}, []byte{byte(i)})
						w.Syscall(kernel.SysRead, [6]uint64{p2.Val, 4}, nil)
					}
				})
				b := t.Spawn(func(w *core.Thread) {
					for i := 0; i < rounds; i++ {
						w.Syscall(kernel.SysRead, [6]uint64{p1.Val, 4}, nil)
						w.Syscall(kernel.SysWrite, [6]uint64{p2.Val2}, []byte{byte(i)})
					}
				})
				a.Join()
				b.Join()
			},
		},
		{
			Name:  "divergent-payload",
			Annot: "expect=divergence expect-divergence=any",
			Main: func(t *core.Thread) {
				// Writes a code address — diversified by ASLR/DCL, so the
				// variants' payloads differ and the monitor must flag a
				// divergence, NOT a deadlock: the corpus pins the two verdict
				// channels apart.
				pr := t.Syscall(kernel.SysPipe2, [6]uint64{}, nil)
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], t.CodeAddr(64))
				t.Syscall(kernel.SysWrite, [6]uint64{pr.Val2}, buf[:])
			},
		},
	}
}
