// Package bugbench is the concurrency-bug corpus: known blocking-bug
// shapes (double locking, lock-order inversion, lost wakeups, abandoned
// barriers, pipe cycles, orphaned locks, leaked semaphores) reproduced as
// guest programs over synclib's primitives, each annotated with the verdict
// the MVEE must reach. The corpus is both the regression suite for the
// deadlock detector (internal/kernel's BlockBoard + core's wait-for graph)
// and a library of deterministic reproductions: every entry forces its bad
// interleaving with explicit rendezvous, so the verdict is identical for
// every seed and schedule — run-to-run, the same threads block at the same
// sites.
package bugbench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/core"
)

// Annotation is an entry's expected verdict, parsed from the compact
// one-line form carried by each corpus entry:
//
//	expect=deadlock cycle=t1,t2 expect-divergence=none
//
// Keys:
//
//	expect             deadlock | clean | divergence (required)
//	cycle              tN,tN,... — the sorted tid set of the wait-for cycle
//	                   the detector must name. Omitted when the deadlock is
//	                   not lock-shaped (the report's cycle must be empty).
//	expect-divergence  none | any (default none): whether Result.Divergence
//	                   may be set. Deadlocks and clean runs must NOT look
//	                   like divergences — that cross-check is the point.
type Annotation struct {
	Expect     string
	Cycle      []int
	Divergence string
}

// ParseAnnotation parses the compact annotation form. The accepted grammar
// round-trips: ParseAnnotation(a.String()) == a.
func ParseAnnotation(s string) (Annotation, error) {
	a := Annotation{Divergence: "none"}
	for _, f := range strings.Fields(s) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return a, fmt.Errorf("bugbench: clause %q is not key=value", f)
		}
		switch k {
		case "expect":
			switch v {
			case "deadlock", "clean", "divergence":
				a.Expect = v
			default:
				return a, fmt.Errorf("bugbench: unknown verdict %q", v)
			}
		case "cycle":
			for _, part := range strings.Split(v, ",") {
				num, found := strings.CutPrefix(part, "t")
				if !found {
					return a, fmt.Errorf("bugbench: cycle element %q lacks the t prefix", part)
				}
				tid, err := strconv.Atoi(num)
				if err != nil || tid < 0 {
					return a, fmt.Errorf("bugbench: bad cycle tid %q", part)
				}
				a.Cycle = append(a.Cycle, tid)
			}
			sort.Ints(a.Cycle)
		case "expect-divergence":
			switch v {
			case "none", "any":
				a.Divergence = v
			default:
				return a, fmt.Errorf("bugbench: expect-divergence must be none or any, got %q", v)
			}
		default:
			return a, fmt.Errorf("bugbench: unknown key %q", k)
		}
	}
	if a.Expect == "" {
		return a, fmt.Errorf("bugbench: annotation %q lacks expect=", s)
	}
	return a, nil
}

// String renders the canonical form: expect first, cycle only when
// non-empty, expect-divergence always last.
func (a Annotation) String() string {
	var sb strings.Builder
	sb.WriteString("expect=")
	sb.WriteString(a.Expect)
	if len(a.Cycle) > 0 {
		sb.WriteString(" cycle=")
		for i, tid := range a.Cycle {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "t%d", tid)
		}
	}
	sb.WriteString(" expect-divergence=")
	if a.Divergence == "" {
		sb.WriteString("none")
	} else {
		sb.WriteString(a.Divergence)
	}
	return sb.String()
}

// Entry is one corpus program plus its annotation.
type Entry struct {
	Name  string
	Annot string
	Main  func(*core.Thread)
}

// Verdict is what one run of an entry actually produced.
type Verdict struct {
	// Outcome is "deadlock", "divergence", "clean", "hang" (the watchdog
	// killed a session that neither finished nor produced a report — always
	// a bug), or "panic".
	Outcome string
	// Cycle is the detector's cycle (sorted tids) when Outcome=="deadlock".
	Cycle []int
	// Result is the full session result.
	Result *core.Result
}

// Run executes one entry under the standard corpus configuration — two
// variants, ASLR+DCL on, detector armed — and classifies the outcome. The
// watchdog only fires on detector bugs; a working detector ends every
// deadlock entry itself.
func Run(e Entry, seed int64, timeout time.Duration) Verdict {
	sess := core.NewSession(core.Options{
		Variants:        2,
		Agent:           agent.WallOfClocks,
		ASLR:            true,
		DCL:             true,
		Seed:            seed,
		MaxThreads:      16,
		DetectDeadlocks: true,
	}, core.Program{Name: "bugbench/" + e.Name, Main: e.Main})
	var timedOut atomic.Bool
	watchdog := time.AfterFunc(timeout, func() {
		timedOut.Store(true)
		sess.Kill()
	})
	res := sess.Run()
	watchdog.Stop()
	v := Verdict{Result: res}
	switch {
	case res.Panic != nil:
		v.Outcome = "panic"
	case res.Deadlock != nil:
		v.Outcome = "deadlock"
		v.Cycle = res.Deadlock.Cycle
	case res.Divergence != nil:
		v.Outcome = "divergence"
	case timedOut.Load():
		v.Outcome = "hang"
	default:
		v.Outcome = "clean"
	}
	return v
}

// Check runs e once with the given seed and compares the verdict against
// the entry's annotation, returning a descriptive error on any mismatch.
func Check(e Entry, seed int64) error {
	ann, err := ParseAnnotation(e.Annot)
	if err != nil {
		return err
	}
	v := Run(e, seed, 30*time.Second)
	if v.Outcome != ann.Expect {
		return fmt.Errorf("%s seed=%d: verdict %q, annotation wants %q (result: deadlock=%v divergence=%v panic=%v)",
			e.Name, seed, v.Outcome, ann.Expect, v.Result.Deadlock, v.Result.Divergence, v.Result.Panic)
	}
	if ann.Expect == "deadlock" && !equalInts(v.Cycle, ann.Cycle) {
		return fmt.Errorf("%s seed=%d: cycle %v, annotation wants %v (report: %v)",
			e.Name, seed, v.Cycle, ann.Cycle, v.Result.Deadlock)
	}
	if ann.Divergence == "none" && v.Result.Divergence != nil {
		return fmt.Errorf("%s seed=%d: unexpected divergence %v", e.Name, seed, v.Result.Divergence)
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
