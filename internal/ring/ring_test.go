package ring

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestLogRoundsCapacityUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := NewLog[int](tc.in, 1).Cap(); got != tc.want {
			t.Errorf("NewLog(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestLogRejectsZeroGroups(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLog with 0 groups did not panic")
		}
	}()
	NewLog[int](8, 0)
}

func TestLogFIFOSingleProducer(t *testing.T) {
	l := NewLog[int](8, 1)
	done := make(chan struct{})
	const n = 1000
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			seq := l.Cursor(0)
			if got := l.Get(seq); got != i {
				t.Errorf("entry %d = %d, want %d", seq, got, i)
				return
			}
			l.Advance(0, seq)
		}
	}()
	for i := 0; i < n; i++ {
		if seq := l.Append(i); seq != uint64(i) {
			t.Fatalf("Append #%d returned seq %d", i, seq)
		}
	}
	<-done
}

func TestLogBroadcastToAllGroups(t *testing.T) {
	const groups = 3
	const n = 500
	l := NewLog[int](16, groups)
	var wg sync.WaitGroup
	errs := make(chan error, groups)
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				seq := l.Cursor(g)
				if got := l.Get(seq); got != i {
					errs <- errf("group %d entry %d = %d, want %d", g, seq, got, i)
					return
				}
				l.Advance(g, seq)
			}
		}(g)
	}
	for i := 0; i < n; i++ {
		l.Append(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLogMultiProducerNoLossNoDup(t *testing.T) {
	const producers = 4
	const per = 2000
	l := NewLog[int](64, 1)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(p*per + i)
			}
		}(p)
	}
	seen := make(map[int]bool, producers*per)
	for i := 0; i < producers*per; i++ {
		seq := l.Cursor(0)
		v := l.Get(seq)
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
		l.Advance(0, seq)
	}
	wg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("delivered %d values, want %d", len(seen), producers*per)
	}
}

func TestLogPerProducerOrderPreserved(t *testing.T) {
	// FIFO per producer: values from one producer arrive in its send order.
	const producers = 3
	const per = 1500
	l := NewLog[[2]int](32, 1)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append([2]int{p, i})
			}
		}(p)
	}
	next := make([]int, producers)
	for i := 0; i < producers*per; i++ {
		seq := l.Cursor(0)
		v := l.Get(seq)
		if v[1] != next[v[0]] {
			t.Fatalf("producer %d: got %d, want %d", v[0], v[1], next[v[0]])
		}
		next[v[0]]++
		l.Advance(0, seq)
	}
	wg.Wait()
}

func TestLogBackpressureBlocksProducer(t *testing.T) {
	l := NewLog[int](4, 1)
	for i := 0; i < 4; i++ {
		l.Append(i)
	}
	appended := make(chan struct{})
	go func() {
		l.Append(99) // must block until the consumer frees a slot
		close(appended)
	}()
	select {
	case <-appended:
		t.Fatal("Append returned while log was full")
	default:
	}
	seq := l.Cursor(0)
	if got := l.Get(seq); got != 0 {
		t.Fatalf("head = %d, want 0", got)
	}
	l.Advance(0, seq)
	<-appended // deadlocks (test timeout) if back-pressure never releases
}

func TestLogTryGet(t *testing.T) {
	l := NewLog[int](8, 1)
	if _, ok := l.TryGet(0); ok {
		t.Fatal("TryGet(0) succeeded on empty log")
	}
	l.Append(42)
	v, ok := l.TryGet(0)
	if !ok || v != 42 {
		t.Fatalf("TryGet(0) = %d,%v want 42,true", v, ok)
	}
	if _, ok := l.TryGet(1); ok {
		t.Fatal("TryGet(1) succeeded before publication")
	}
}

func TestLogAdvanceOutOfOrderPanics(t *testing.T) {
	l := NewLog[int](8, 1)
	l.Append(1)
	l.Append(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Advance did not panic")
		}
	}()
	l.Advance(0, 1) // cursor is 0; advancing seq 1 is a consumption bug
}

func TestLogAdvanceTo(t *testing.T) {
	l := NewLog[int](8, 2)
	for i := 0; i < 5; i++ {
		l.Append(i)
	}
	l.AdvanceTo(0, 3)
	if l.Cursor(0) != 3 {
		t.Fatalf("cursor = %d, want 3", l.Cursor(0))
	}
	l.AdvanceTo(0, 1) // moving backwards is a no-op
	if l.Cursor(0) != 3 {
		t.Fatalf("cursor moved backwards to %d", l.Cursor(0))
	}
}

func TestLogProduced(t *testing.T) {
	l := NewLog[int](8, 1)
	if l.Produced() != 0 {
		t.Fatalf("Produced = %d on empty log", l.Produced())
	}
	l.Append(1)
	l.Append(2)
	if l.Produced() != 2 {
		t.Fatalf("Produced = %d, want 2", l.Produced())
	}
}

// Property: for any interleaving of appends from up to 4 producers, a single
// consumer group observes every value exactly once and per-producer FIFO.
func TestLogPropertyBroadcast(t *testing.T) {
	f := func(counts [4]uint8) bool {
		l := NewLog[[2]int](16, 2)
		var wg sync.WaitGroup
		total := 0
		for p, c := range counts {
			n := int(c % 64)
			total += n
			wg.Add(1)
			go func(p, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					l.Append([2]int{p, i})
				}
			}(p, n)
		}
		ok := true
		var cg sync.WaitGroup
		for g := 0; g < 2; g++ {
			cg.Add(1)
			go func(g int) {
				defer cg.Done()
				next := [4]int{}
				for i := 0; i < total; i++ {
					seq := l.Cursor(g)
					v := l.Get(seq)
					if v[1] != next[v[0]] {
						ok = false
						return
					}
					next[v[0]]++
					l.Advance(g, seq)
				}
			}(g)
		}
		wg.Wait()
		cg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
