package ring

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLogRoundsCapacityUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := NewLog[int](tc.in, 1).Cap(); got != tc.want {
			t.Errorf("NewLog(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestLogRejectsZeroGroups(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLog with 0 groups did not panic")
		}
	}()
	NewLog[int](8, 0)
}

func TestLogFIFOSingleProducer(t *testing.T) {
	l := NewLog[int](8, 1)
	done := make(chan struct{})
	const n = 1000
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			seq := l.Cursor(0)
			if got := l.Get(seq); got != i {
				t.Errorf("entry %d = %d, want %d", seq, got, i)
				return
			}
			l.Advance(0, seq)
		}
	}()
	for i := 0; i < n; i++ {
		if seq := l.Append(i); seq != uint64(i) {
			t.Fatalf("Append #%d returned seq %d", i, seq)
		}
	}
	<-done
}

func TestLogBroadcastToAllGroups(t *testing.T) {
	const groups = 3
	const n = 500
	l := NewLog[int](16, groups)
	var wg sync.WaitGroup
	errs := make(chan error, groups)
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				seq := l.Cursor(g)
				if got := l.Get(seq); got != i {
					errs <- errf("group %d entry %d = %d, want %d", g, seq, got, i)
					return
				}
				l.Advance(g, seq)
			}
		}(g)
	}
	for i := 0; i < n; i++ {
		l.Append(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLogMultiProducerNoLossNoDup(t *testing.T) {
	const producers = 4
	const per = 2000
	l := NewLog[int](64, 1)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(p*per + i)
			}
		}(p)
	}
	seen := make(map[int]bool, producers*per)
	for i := 0; i < producers*per; i++ {
		seq := l.Cursor(0)
		v := l.Get(seq)
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
		l.Advance(0, seq)
	}
	wg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("delivered %d values, want %d", len(seen), producers*per)
	}
}

func TestLogPerProducerOrderPreserved(t *testing.T) {
	// FIFO per producer: values from one producer arrive in its send order.
	const producers = 3
	const per = 1500
	l := NewLog[[2]int](32, 1)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append([2]int{p, i})
			}
		}(p)
	}
	next := make([]int, producers)
	for i := 0; i < producers*per; i++ {
		seq := l.Cursor(0)
		v := l.Get(seq)
		if v[1] != next[v[0]] {
			t.Fatalf("producer %d: got %d, want %d", v[0], v[1], next[v[0]])
		}
		next[v[0]]++
		l.Advance(0, seq)
	}
	wg.Wait()
}

func TestLogBackpressureBlocksProducer(t *testing.T) {
	l := NewLog[int](4, 1)
	for i := 0; i < 4; i++ {
		l.Append(i)
	}
	appended := make(chan struct{})
	go func() {
		l.Append(99) // must block until the consumer frees a slot
		close(appended)
	}()
	select {
	case <-appended:
		t.Fatal("Append returned while log was full")
	default:
	}
	seq := l.Cursor(0)
	if got := l.Get(seq); got != 0 {
		t.Fatalf("head = %d, want 0", got)
	}
	l.Advance(0, seq)
	<-appended // deadlocks (test timeout) if back-pressure never releases
}

func TestLogTryGet(t *testing.T) {
	l := NewLog[int](8, 1)
	if _, ok := l.TryGet(0); ok {
		t.Fatal("TryGet(0) succeeded on empty log")
	}
	l.Append(42)
	v, ok := l.TryGet(0)
	if !ok || v != 42 {
		t.Fatalf("TryGet(0) = %d,%v want 42,true", v, ok)
	}
	if _, ok := l.TryGet(1); ok {
		t.Fatal("TryGet(1) succeeded before publication")
	}
}

func TestLogAdvanceOutOfOrderPanics(t *testing.T) {
	l := NewLog[int](8, 1)
	l.Append(1)
	l.Append(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Advance did not panic")
		}
	}()
	l.Advance(0, 1) // cursor is 0; advancing seq 1 is a consumption bug
}

func TestLogAdvanceTo(t *testing.T) {
	l := NewLog[int](8, 2)
	for i := 0; i < 5; i++ {
		l.Append(i)
	}
	l.AdvanceTo(0, 3)
	if l.Cursor(0) != 3 {
		t.Fatalf("cursor = %d, want 3", l.Cursor(0))
	}
	l.AdvanceTo(0, 1) // moving backwards is a no-op
	if l.Cursor(0) != 3 {
		t.Fatalf("cursor moved backwards to %d", l.Cursor(0))
	}
}

func TestLogProduced(t *testing.T) {
	l := NewLog[int](8, 1)
	if l.Produced() != 0 {
		t.Fatalf("Produced = %d on empty log", l.Produced())
	}
	l.Append(1)
	l.Append(2)
	if l.Produced() != 2 {
		t.Fatalf("Produced = %d, want 2", l.Produced())
	}
}

// Property: for any interleaving of appends from up to 4 producers, a single
// consumer group observes every value exactly once and per-producer FIFO.
func TestLogPropertyBroadcast(t *testing.T) {
	f := func(counts [4]uint8) bool {
		l := NewLog[[2]int](16, 2)
		var wg sync.WaitGroup
		total := 0
		for p, c := range counts {
			n := int(c % 64)
			total += n
			wg.Add(1)
			go func(p, n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					l.Append([2]int{p, i})
				}
			}(p, n)
		}
		ok := true
		var cg sync.WaitGroup
		for g := 0; g < 2; g++ {
			cg.Add(1)
			go func(g int) {
				defer cg.Done()
				next := [4]int{}
				for i := 0; i < total; i++ {
					seq := l.Cursor(g)
					v := l.Get(seq)
					if v[1] != next[v[0]] {
						ok = false
						return
					}
					next[v[0]]++
					l.Advance(g, seq)
				}
			}(g)
		}
		wg.Wait()
		cg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func TestAppendBatchSequential(t *testing.T) {
	l := NewLog[int](8, 1)
	if first := l.AppendBatch([]int{10, 11, 12}); first != 0 {
		t.Fatalf("first seq = %d, want 0", first)
	}
	if first := l.AppendBatch([]int{13}); first != 3 {
		t.Fatalf("first seq = %d, want 3", first)
	}
	for i := 0; i < 4; i++ {
		if got := l.Get(uint64(i)); got != 10+i {
			t.Fatalf("entry %d = %d, want %d", i, got, 10+i)
		}
		l.Advance(0, uint64(i))
	}
}

func TestAppendBatchEmpty(t *testing.T) {
	l := NewLog[int](8, 1)
	l.AppendBatch(nil)
	if l.Produced() != 0 {
		t.Fatalf("empty batch produced %d entries", l.Produced())
	}
}

func TestAppendBatchLargerThanCapacity(t *testing.T) {
	// A batch exceeding the ring capacity must be split internally, with
	// the consumer draining mid-batch, instead of deadlocking on the ring's
	// own bound.
	l := NewLog[int](4, 1)
	const n = 19
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			seq := l.Cursor(0)
			if got := l.Get(seq); got != i {
				t.Errorf("entry %d = %d, want %d", seq, got, i)
				return
			}
			l.Advance(0, seq)
		}
	}()
	l.AppendBatch(vs)
	<-done
}

func TestTryConsumeBatch(t *testing.T) {
	l := NewLog[int](16, 2)
	out := make([]int, 4)
	if n := l.TryConsumeBatch(0, out); n != 0 {
		t.Fatalf("consumed %d from empty log", n)
	}
	for i := 0; i < 6; i++ {
		l.Append(i)
	}
	if n := l.TryConsumeBatch(0, out); n != 4 {
		t.Fatalf("consumed %d, want 4 (len(out))", n)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i)
		}
	}
	if n := l.TryConsumeBatch(0, out); n != 2 {
		t.Fatalf("second consume = %d, want 2", n)
	}
	if out[0] != 4 || out[1] != 5 {
		t.Fatalf("second batch = %v", out[:2])
	}
	if l.Cursor(0) != 6 {
		t.Fatalf("cursor = %d, want 6", l.Cursor(0))
	}
	// Group 1 is independent and still sees everything.
	if n := l.TryConsumeBatch(1, out); n != 4 || out[0] != 0 {
		t.Fatalf("group 1 first consume = %d (%v)", n, out)
	}
}

func TestTryConsumeBatchStopsAtUnpublished(t *testing.T) {
	// A multi-producer log can have a published entry after an unpublished
	// one; the batch must stop at the gap.
	l := NewLog[int](8, 1)
	l.prod.Add(1) // producer A claimed seq 0 but has not published
	l.slots[1].val = 42
	l.prod.Add(1)
	l.slots[1].pub.Store(2) // producer B published seq 1
	out := make([]int, 4)
	if n := l.TryConsumeBatch(0, out); n != 0 {
		t.Fatalf("consumed %d across an unpublished gap", n)
	}
	l.slots[0].val = 41
	l.slots[0].pub.Store(1)
	if n := l.TryConsumeBatch(0, out); n != 2 || out[0] != 41 || out[1] != 42 {
		t.Fatalf("consume after publish = %d (%v)", n, out[:2])
	}
}

// Regression: the stop callback must be polled at the end of the initial
// busy-spin phase, not only deep into the escalated backoff. Before the
// fix, the first poll landed at spin 63 — a dead session could spin ~64
// iterations (including scheduler yields) longer than needed.
func TestStopPolledDuringBusySpinEscalation(t *testing.T) {
	first := -1
	for s := 0; s < 1024 && first < 0; s++ {
		if stopPollDue(s) {
			first = s
		}
	}
	if first != busySpins-1 {
		t.Fatalf("first stop poll at spin %d, want %d (end of busy-spin phase)", first, busySpins-1)
	}
	// And it keeps being polled periodically through the escalation path.
	polls := 0
	for s := 0; s < 256; s++ {
		if stopPollDue(s) {
			polls++
		}
	}
	if want := 256 / busySpins; polls != want {
		t.Fatalf("%d polls in 256 spins, want %d", polls, want)
	}
}

func TestStopUnblocksFullRingAppendPromptly(t *testing.T) {
	l := NewLog[int](2, 1)
	calls := 0
	l.SetStop(func() bool { calls++; return true })
	l.Append(0)
	l.Append(1)
	defer func() {
		if recover() != ErrStopped {
			t.Fatal("Append on a stopped full ring did not panic ErrStopped")
		}
		// The stop flag must have been consulted exactly once: at the first
		// due poll, before any further backoff escalation.
		if calls != 1 {
			t.Fatalf("stop callback polled %d times before unwinding, want 1", calls)
		}
	}()
	l.Append(2)
}

// Property (satellite): batched ring ops are observation-equivalent to
// single-event ops — for any mix of Append and AppendBatch producers and a
// consumer using TryConsumeBatch, every group observes exactly the same
// thing single-op consumers would: every value exactly once, per-producer
// FIFO. Run under -race in CI.
func TestLogPropertyBatchedEquivalentToSingle(t *testing.T) {
	f := func(counts [3]uint8, batchSizes [3]uint8) bool {
		l := NewLog[[2]int](16, 2)
		var wg sync.WaitGroup
		total := 0
		for p, c := range counts {
			n := int(c % 48)
			total += n
			bs := int(batchSizes[p]%5) + 1 // batch size 1..5
			wg.Add(1)
			go func(p, n, bs int) {
				defer wg.Done()
				batch := make([][2]int, 0, bs)
				for i := 0; i < n; i++ {
					if p%2 == 0 {
						// Batched producer: flush every bs values.
						batch = append(batch, [2]int{p, i})
						if len(batch) == bs || i == n-1 {
							l.AppendBatch(batch)
							batch = batch[:0]
						}
					} else {
						l.Append([2]int{p, i})
					}
				}
			}(p, n, bs)
		}
		var ok atomic.Bool
		ok.Store(true)
		var cg sync.WaitGroup
		for g := 0; g < 2; g++ {
			cg.Add(1)
			go func(g int) {
				defer cg.Done()
				next := [3]int{}
				out := make([][2]int, 3)
				if g == 1 {
					out = out[:1] // group 1 consumes in singles: same observation
				}
				seen := 0
				for seen < total {
					n := l.TryConsumeBatch(g, out)
					if n == 0 {
						runtime.Gosched()
						continue
					}
					for _, v := range out[:n] {
						if v[1] != next[v[0]] {
							ok.Store(false)
							return
						}
						next[v[0]]++
					}
					seen += n
				}
			}(g)
		}
		wg.Wait()
		cg.Wait()
		return ok.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
