package ring

import "sync/atomic"

// Package-wide wait/batch telemetry. The counters sit on paths that are
// already slow or amortized — a park is a scheduler transition, a stop-watch
// trip is a bug report, a batch op carries k items for one counter bump — so
// the per-syscall fast path (Append/Get/Ready) stays untouched: no atomic
// traffic is added to lines the replication path spins on.
//
// The counters are process-global rather than per-Log on purpose: a session
// owns dozens of rings (one syscall buffer per thread, clocks, sync
// buffers), and the admin plane wants "is this fleet parking or spinning?",
// not a per-ring breakdown. Deltas between snapshots give rates.
var (
	parkCount     atomic.Uint64 // waits that escalated to a futex park
	stopTrips     atomic.Uint64 // parking-contract watchdog violations
	appendBatches atomic.Uint64 // AppendBatch calls (non-empty)
	appendItems   atomic.Uint64 // items published through AppendBatch
	consumeRuns   atomic.Uint64 // TryConsumeBatch calls that consumed
	consumeItems  atomic.Uint64 // items consumed through TryConsumeBatch
)

// Metrics is one snapshot of the package-wide ring counters. All values are
// cumulative since process start; readers diff snapshots for rates.
type Metrics struct {
	Parks         uint64 `json:"parks"`
	StopTrips     uint64 `json:"stop_trips"`
	AppendBatches uint64 `json:"append_batches"`
	AppendItems   uint64 `json:"append_items"`
	ConsumeRuns   uint64 `json:"consume_runs"`
	ConsumeItems  uint64 `json:"consume_items"`
}

// ReadMetrics snapshots the package-wide ring counters. The individual
// loads are not mutually atomic — the snapshot may straddle concurrent
// updates — which is fine for monitoring.
func ReadMetrics() Metrics {
	return Metrics{
		Parks:         parkCount.Load(),
		StopTrips:     stopTrips.Load(),
		AppendBatches: appendBatches.Load(),
		AppendItems:   appendItems.Load(),
		ConsumeRuns:   consumeRuns.Load(),
		ConsumeItems:  consumeItems.Load(),
	}
}
