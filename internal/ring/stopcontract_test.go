package ring

import (
	"sync/atomic"
	"testing"
	"time"
)

// withStopWatch arms the debug stop watch and a capturing violation
// handler for one test.
func withStopWatch(t *testing.T, d time.Duration) *atomic.Int32 {
	t.Helper()
	prev := SetDebugStopWatch(d)
	var fired atomic.Int32
	SetStopViolationHandler(func(string) { fired.Add(1) })
	t.Cleanup(func() {
		SetDebugStopWatch(prev)
		SetStopViolationHandler(nil)
	})
	return &fired
}

// A bad owner: installs SetStop, flips the condition, never Interrupts.
// The parked consumer would sleep forever (it cannot poll the callback);
// the debug watch must catch the contract violation, and its rescue wake
// must still unwind the waiter through ErrStopped.
func TestStopWithoutInterruptTripsDebugWatch(t *testing.T) {
	fired := withStopWatch(t, 10*time.Millisecond)
	l := NewLog[int](4, 1)
	var stop atomic.Bool
	l.SetStop(stop.Load)

	unwound := make(chan any, 1)
	go func() {
		defer func() { unwound <- recover() }()
		l.Get(0) // nothing is ever published: the waiter spins, then parks
	}()
	// Let the waiter actually reach the park (a fixed sleep races the
	// pre-park spin when the scheduler is slow, e.g. under -race), then
	// flip stop WITHOUT Interrupt — the mistake the contract forbids.
	for l.waitQ.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)

	select {
	case r := <-unwound:
		if r != ErrStopped {
			t.Fatalf("waiter recovered %v, want ErrStopped", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter still parked: the debug watch did not rescue it")
	}
	if fired.Load() == 0 {
		t.Fatal("contract violation not reported: SetStop without Interrupt went undetected")
	}
}

// A correct owner: Interrupt accompanies the stop flip (the monitor.Kill /
// exchange.Stop pattern). The waiter unwinds promptly and the watch stays
// silent.
func TestStopWithInterruptPassesDebugWatch(t *testing.T) {
	fired := withStopWatch(t, 50*time.Millisecond)
	l := NewLog[int](4, 1)
	var stop atomic.Bool
	l.SetStop(stop.Load)

	unwound := make(chan any, 1)
	go func() {
		defer func() { unwound <- recover() }()
		l.Get(0)
	}()
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	l.Interrupt() // the contract: wake parked waiters when the condition flips

	select {
	case r := <-unwound:
		if r != ErrStopped {
			t.Fatalf("waiter recovered %v, want ErrStopped", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter did not unwind after Interrupt")
	}
	// Give the (disarmed-by-unwind) watchdog window time to pass, then
	// assert no false positive.
	time.Sleep(80 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("false positive: a compliant owner tripped the stop watch")
	}
}
