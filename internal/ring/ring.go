// Package ring implements the bounded, shared ring buffers the MVEE uses to
// carry synchronization events from the master variant to the slave
// variants ("sync buffers") and to replicate system-call results ("syscall
// buffers", §4).
//
// The central type is Log: a bounded, multi-producer, append-only circular
// log with one independent read cursor per consumer group. A consumer group
// corresponds to one slave variant: every slave consumes the entire log, in
// order, at its own pace. Slots are recycled once every group has moved its
// cursor past them, so a slow slave back-pressures the master exactly like
// a full shared-memory ring does in the paper's implementation.
//
// With a single producer the Log degenerates to the per-thread SPSC buffers
// used by the wall-of-clocks agent (§4.5); with many producers it is the
// single shared buffer of the total-order and partial-order agents.
package ring

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
)

// ErrStopped is panicked by blocking Log operations after SetStop's
// callback reports shutdown, so that threads parked on a dead ring unwind
// instead of spinning forever. Callers that install a stop callback must
// recover it.
var ErrStopped = errors.New("ring: stopped")

// Log is a bounded multi-producer broadcast log. See the package comment.
// Create Logs with NewLog; the zero value is not usable.
type Log[T any] struct {
	slots   []slot[T]
	mask    uint64
	prod    atomic.Uint64   // next sequence number to allocate
	cursors []atomic.Uint64 // per consumer group: next sequence to consume
	stop    func() bool     // optional shutdown signal; see SetStop
}

type slot[T any] struct {
	pub atomic.Uint64 // seq+1 once the value for seq is readable
	val T
}

// NewLog returns a log with the given capacity (rounded up to a power of
// two, minimum 2) and one read cursor per consumer group. groups must be at
// least 1.
func NewLog[T any](capacity, groups int) *Log[T] {
	if groups < 1 {
		panic(fmt.Sprintf("ring: %d consumer groups", groups))
	}
	c := 2
	for c < capacity {
		c <<= 1
	}
	return &Log[T]{
		slots:   make([]slot[T], c),
		mask:    uint64(c - 1),
		cursors: make([]atomic.Uint64, groups),
	}
}

// Cap returns the capacity of the log.
func (l *Log[T]) Cap() int { return len(l.slots) }

// Groups returns the number of consumer groups.
func (l *Log[T]) Groups() int { return len(l.cursors) }

// Append publishes v and returns its sequence number. Append blocks (spins,
// yielding to the scheduler) while the slot it needs is still unread by the
// slowest consumer group; this is the back-pressure a bounded shared ring
// applies to the master variant.
func (l *Log[T]) Append(v T) uint64 {
	seq := l.prod.Add(1) - 1
	// The slot for seq was previously occupied by seq-cap. It may be
	// reused only once every group's cursor has passed that occupant.
	for spins := 0; seq >= l.minCursor()+uint64(len(l.slots)); spins++ {
		l.checkStop(spins)
		backoff(spins)
	}
	s := &l.slots[seq&l.mask]
	s.val = v
	s.pub.Store(seq + 1)
	return seq
}

// Get returns the value with sequence number seq, blocking until it has
// been published. Callers must only ask for sequence numbers that are not
// yet overwritten, i.e. seq >= Cursor(g) for their group.
func (l *Log[T]) Get(seq uint64) T {
	s := &l.slots[seq&l.mask]
	for spins := 0; s.pub.Load() != seq+1; spins++ {
		l.checkStop(spins)
		backoff(spins)
	}
	return s.val
}

// TryGet returns the value with sequence number seq if it has been
// published, without blocking.
func (l *Log[T]) TryGet(seq uint64) (T, bool) {
	s := &l.slots[seq&l.mask]
	if s.pub.Load() != seq+1 {
		var zero T
		return zero, false
	}
	return s.val, true
}

// Cursor returns the next sequence number consumer group g will consume.
func (l *Log[T]) Cursor(g int) uint64 { return l.cursors[g].Load() }

// Advance moves group g's cursor from seq to seq+1. Groups must consume in
// order; Advance panics if seq is not the current cursor, which would
// indicate two threads of the same variant racing on consumption.
func (l *Log[T]) Advance(g int, seq uint64) {
	if !l.cursors[g].CompareAndSwap(seq, seq+1) {
		panic(fmt.Sprintf("ring: group %d advanced out of order (cursor %d, advancing %d)",
			g, l.cursors[g].Load(), seq))
	}
}

// AdvanceTo moves group g's cursor forward to seq if it is currently
// behind. Used by consumers that skip entries not addressed to them after
// proving the entries were consumed elsewhere.
func (l *Log[T]) AdvanceTo(g int, seq uint64) {
	for {
		cur := l.cursors[g].Load()
		if cur >= seq {
			return
		}
		if l.cursors[g].CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Produced returns the number of sequence numbers allocated so far. Entries
// with seq < Produced() may not all be published yet (a producer may be
// mid-Append); use TryGet to test.
func (l *Log[T]) Produced() uint64 { return l.prod.Load() }

func (l *Log[T]) minCursor() uint64 {
	min := l.cursors[0].Load()
	for i := 1; i < len(l.cursors); i++ {
		if c := l.cursors[i].Load(); c < min {
			min = c
		}
	}
	return min
}

// SetStop installs a shutdown callback. Once it returns true, blocked
// Append and Get calls panic with ErrStopped rather than spinning forever.
func (l *Log[T]) SetStop(f func() bool) { l.stop = f }

func (l *Log[T]) checkStop(spins int) {
	if l.stop != nil && spins&63 == 63 && l.stop() {
		panic(ErrStopped)
	}
}

// backoff yields the processor with increasing politeness: a few busy spins,
// then scheduler yields. The MVEE's consumers are latency sensitive (a slave
// thread waiting on its ticket sits on the program's critical path), so we
// spin briefly before involving the scheduler.
func backoff(spins int) {
	if spins < 16 {
		return // busy spin
	}
	runtime.Gosched()
}
