// Package ring implements the bounded, shared ring buffers the MVEE uses to
// carry synchronization events from the master variant to the slave
// variants ("sync buffers") and to replicate system-call results ("syscall
// buffers", §4).
//
// The central type is Log: a bounded, multi-producer, append-only circular
// log with one independent read cursor per consumer group. A consumer group
// corresponds to one slave variant: every slave consumes the entire log, in
// order, at its own pace. Slots are recycled once every group has moved its
// cursor past them, so a slow slave back-pressures the master exactly like
// a full shared-memory ring does in the paper's implementation.
//
// With a single producer the Log degenerates to the per-thread SPSC buffers
// used by the wall-of-clocks agent (§4.5); with many producers it is the
// single shared buffer of the total-order and partial-order agents.
//
// Hot-path design (§4's shared-ring lessons, applied):
//
//   - The producer sequence word and every consumer-group cursor live on
//     their own cache line. The master writes prod and the slaves write
//     their cursors at syscall rate; without padding those words share
//     lines and every append/advance ping-pongs the line across cores
//     (false sharing).
//   - AppendBatch and TryConsumeBatch amortize the cross-core traffic over
//     k events: one producer fetch-add and one back-pressure wait per
//     batch, and one cursor compare-and-swap per consumed run.
//   - Blocking operations back off adaptively: a short busy spin (the
//     common case — the counterpart thread is mid-operation on another
//     core), then a procyield-style pause that keeps the OS thread but
//     stays off the interconnect, then scheduler yields, and finally a
//     true park on the log's futex.Parker wait set — a consumer lagging
//     far behind (or a producer stalled on back-pressure) sleeps at zero
//     CPU until the counterpart's next publish or cursor advance wakes
//     it, instead of yield-storming the scheduler.
package ring

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/futex"
)

// ErrStopped is panicked by blocking Log operations after SetStop's
// callback reports shutdown, so that threads parked on a dead ring unwind
// instead of spinning forever. Callers that install a stop callback must
// recover it.
var ErrStopped = errors.New("ring: stopped")

// cacheLine is the assumed coherence granule. 64 bytes covers x86-64 and
// most arm64 parts; over-padding on 128-byte-line machines costs a few
// bytes, under-padding would cost false sharing.
const cacheLine = 64

// paddedCursor is one consumer group's read position, alone on its cache
// line so that group A advancing never invalidates the line group B (or the
// producer) is spinning on.
type paddedCursor struct {
	c atomic.Uint64
	_ [cacheLine - 8]byte
}

// Log is a bounded multi-producer broadcast log. See the package comment.
// Create Logs with NewLog; the zero value is not usable.
type Log[T any] struct {
	slots []slot[T]
	mask  uint64
	stop  func() bool // optional shutdown signal; see SetStop

	_       [cacheLine]byte
	prod    atomic.Uint64 // next sequence number to allocate
	_       [cacheLine - 8]byte
	cursors []paddedCursor // per consumer group: next sequence to consume

	// waitQ parks waiters that have spun past the pause phase: consumers
	// waiting on a publication, producers waiting on back-pressure. Every
	// state change (publish, cursor advance) wakes it — one atomic load
	// when nobody is parked. One wait set per log is deliberate: wakes
	// broadcast and waiters re-check, so sharing costs only spurious
	// re-checks, while per-slot wait sets would cost a producer one load
	// per slot instead of one per operation.
	waitQ futex.Parker
}

type slot[T any] struct {
	pub atomic.Uint64 // seq+1 once the value for seq is readable
	val T
}

// NewLog returns a log with the given capacity (rounded up to a power of
// two, minimum 2) and one read cursor per consumer group. groups must be at
// least 1.
func NewLog[T any](capacity, groups int) *Log[T] {
	if groups < 1 {
		panic(fmt.Sprintf("ring: %d consumer groups", groups))
	}
	c := 2
	for c < capacity {
		c <<= 1
	}
	return &Log[T]{
		slots:   make([]slot[T], c),
		mask:    uint64(c - 1),
		cursors: make([]paddedCursor, groups),
	}
}

// Cap returns the capacity of the log.
func (l *Log[T]) Cap() int { return len(l.slots) }

// Groups returns the number of consumer groups.
func (l *Log[T]) Groups() int { return len(l.cursors) }

// Append publishes v and returns its sequence number. Append blocks (spins,
// then backs off) while the slot it needs is still unread by the slowest
// consumer group; this is the back-pressure a bounded shared ring applies
// to the master variant.
func (l *Log[T]) Append(v T) uint64 {
	seq := l.prod.Add(1) - 1
	// The slot for seq was previously occupied by seq-cap. It may be
	// reused only once every group's cursor has passed that occupant.
	l.awaitSpace(seq)
	s := &l.slots[seq&l.mask]
	s.val = v
	s.pub.Store(seq + 1)
	l.waitQ.Wake()
	return seq
}

// AppendBatch publishes vs in order and returns the sequence number of the
// first element (meaningless when vs is empty). The whole batch costs one
// producer fetch-add and one back-pressure wait; per-producer FIFO order is
// preserved because the sequence range is claimed atomically. Batches
// larger than the capacity are split internally so they cannot deadlock
// against the ring's own bound.
func (l *Log[T]) AppendBatch(vs []T) uint64 {
	if len(vs) == 0 {
		return l.prod.Load()
	}
	appendBatches.Add(1)
	appendItems.Add(uint64(len(vs)))
	// A batch can only be in flight whole if it fits the ring: the
	// back-pressure wait below needs the LAST slot of the chunk to be
	// recyclable while the first is still unpublished.
	first := uint64(0)
	for chunk := 0; len(vs) > 0; chunk++ {
		n := len(vs)
		if n > len(l.slots) {
			n = len(l.slots)
		}
		seq := l.prod.Add(uint64(n)) - uint64(n)
		if chunk == 0 {
			first = seq
		}
		// One wait for the whole chunk: space for the last slot implies
		// space for every earlier one.
		l.awaitSpace(seq + uint64(n) - 1)
		for i := 0; i < n; i++ {
			l.slots[(seq+uint64(i))&l.mask].val = vs[i]
		}
		// Publish in order. Consumers poll slot i's publication word, so
		// the batch becomes visible front to back; the amortized part is
		// the single fetch-add and single back-pressure check above.
		for i := 0; i < n; i++ {
			l.slots[(seq+uint64(i))&l.mask].pub.Store(seq + uint64(i) + 1)
		}
		l.waitQ.Wake()
		vs = vs[n:]
	}
	return first
}

// Reserve claims the next sequence number and blocks until its slot is
// recyclable, without publishing anything. Publish(seq, v) completes the
// append. The split exists for producers that must place a value into
// slot-lifetime storage (e.g. a payload arena recycled in lockstep with the
// ring) before it becomes visible: once Reserve returns, every consumer
// group has moved past the slot's previous occupant, so whatever backed
// that occupant may be reused safely. Consumers at seq simply keep polling
// until Publish lands, exactly as with a producer mid-Append.
func (l *Log[T]) Reserve() uint64 {
	seq := l.prod.Add(1) - 1
	l.awaitSpace(seq)
	return seq
}

// ReserveN reserves n consecutive sequence numbers in one producer
// fetch-add and returns the first: the batch counterpart of Reserve, for a
// producer placing several values into slot-lifetime storage before
// publishing them (front-to-back, via Publish) as one multi-record. Like
// AppendBatch's chunks, the single awaitSpace on the LAST reserved slot
// covers the whole run. n must not exceed the ring's capacity — callers
// chunk larger batches.
func (l *Log[T]) ReserveN(n int) uint64 {
	if n > len(l.slots) {
		panic("ring: ReserveN larger than ring capacity")
	}
	seq := l.prod.Add(uint64(n)) - uint64(n)
	l.awaitSpace(seq + uint64(n) - 1)
	return seq
}

// Publish completes an append started with Reserve.
func (l *Log[T]) Publish(seq uint64, v T) {
	s := &l.slots[seq&l.mask]
	s.val = v
	s.pub.Store(seq + 1)
	l.waitQ.Wake()
}

// PeekBatch copies the run of published entries starting at sequence from
// into out (at most len(out)) and returns how many were copied, without
// moving any cursor. It never blocks. Callers must only peek at sequences
// that are not yet overwritten, i.e. from >= Cursor(g) for their group;
// the copies then stay valid even after the producer recycles the slots,
// but any slot-lifetime storage a value references (see Reserve) is only
// valid until the cursor advances past it.
func (l *Log[T]) PeekBatch(from uint64, out []T) int {
	n := 0
	for n < len(out) {
		s := &l.slots[(from+uint64(n))&l.mask]
		if s.pub.Load() != from+uint64(n)+1 {
			break
		}
		out[n] = s.val
		n++
	}
	return n
}

// awaitSpace blocks until the slot for seq is recyclable, i.e. every
// consumer group's cursor has passed seq-cap. Past the spin/pause phases
// the producer parks on the wait set; consumers advancing their cursor
// wake it.
func (l *Log[T]) awaitSpace(seq uint64) {
	for spins := 0; seq >= l.minCursor()+uint64(len(l.slots)); spins++ {
		l.checkStop(spins)
		if ParkDue(spins) {
			g := l.waitQ.Prepare()
			if seq < l.minCursor()+uint64(len(l.slots)) || l.stopFired() {
				l.waitQ.Cancel()
				continue
			}
			l.park(g)
			continue
		}
		backoff(spins)
	}
}

// Get returns the value with sequence number seq, blocking until it has
// been published. Callers must only ask for sequence numbers that are not
// yet overwritten, i.e. seq >= Cursor(g) for their group.
func (l *Log[T]) Get(seq uint64) T {
	s := &l.slots[seq&l.mask]
	for spins := 0; s.pub.Load() != seq+1; spins++ {
		l.checkStop(spins)
		if ParkDue(spins) {
			g := l.waitQ.Prepare()
			if s.pub.Load() == seq+1 || l.stopFired() {
				l.waitQ.Cancel()
				continue
			}
			l.park(g)
			continue
		}
		backoff(spins)
	}
	return s.val
}

// Ready reports whether the value with sequence number seq has been
// published. It is the cheap way to poll: a single load of the slot's
// publication word, with none of the value-copy (or zero-value
// construction) TryGet pays on every miss — which matters when T is a
// fat record and the poll loop runs per syscall.
func (l *Log[T]) Ready(seq uint64) bool {
	return l.slots[seq&l.mask].pub.Load() == seq+1
}

// TryGet returns the value with sequence number seq if it has been
// published, without blocking.
func (l *Log[T]) TryGet(seq uint64) (T, bool) {
	s := &l.slots[seq&l.mask]
	if s.pub.Load() != seq+1 {
		var zero T
		return zero, false
	}
	return s.val, true
}

// TryConsumeBatch copies the run of published entries at group g's cursor
// into out (at most len(out) of them), advances the cursor past the run
// with a single compare-and-swap, and returns how many were consumed (0 if
// none are ready). It never blocks.
//
// Each consumer group must have a single consuming goroutine, exactly like
// Advance: TryConsumeBatch panics if the cursor moved underneath it, which
// would indicate two threads of the same variant racing on consumption.
//
// The copies are the point: once TryConsumeBatch returns, the consumer
// owns out[:n] outright and the producer may recycle the slots, so a slave
// can validate a whole batch of records without touching the shared ring
// again.
func (l *Log[T]) TryConsumeBatch(g int, out []T) int {
	cur := l.cursors[g].c.Load()
	n := l.PeekBatch(cur, out)
	if n == 0 {
		return 0
	}
	if !l.cursors[g].c.CompareAndSwap(cur, cur+uint64(n)) {
		panic(fmt.Sprintf("ring: group %d consumed concurrently (cursor moved from %d)", g, cur))
	}
	consumeRuns.Add(1)
	consumeItems.Add(uint64(n))
	l.waitQ.Wake()
	return n
}

// Cursor returns the next sequence number consumer group g will consume.
func (l *Log[T]) Cursor(g int) uint64 { return l.cursors[g].c.Load() }

// Advance moves group g's cursor from seq to seq+1. Groups must consume in
// order; Advance panics if seq is not the current cursor, which would
// indicate two threads of the same variant racing on consumption.
func (l *Log[T]) Advance(g int, seq uint64) {
	if !l.cursors[g].c.CompareAndSwap(seq, seq+1) {
		panic(fmt.Sprintf("ring: group %d advanced out of order (cursor %d, advancing %d)",
			g, l.cursors[g].c.Load(), seq))
	}
	l.waitQ.Wake()
}

// AdvanceTo moves group g's cursor forward to seq if it is currently
// behind. Used by consumers that skip entries not addressed to them after
// proving the entries were consumed elsewhere.
func (l *Log[T]) AdvanceTo(g int, seq uint64) {
	for {
		cur := l.cursors[g].c.Load()
		if cur >= seq {
			return
		}
		if l.cursors[g].c.CompareAndSwap(cur, seq) {
			l.waitQ.Wake()
			return
		}
	}
}

// Produced returns the number of sequence numbers allocated so far. Entries
// with seq < Produced() may not all be published yet (a producer may be
// mid-Append); use TryGet to test.
func (l *Log[T]) Produced() uint64 { return l.prod.Load() }

func (l *Log[T]) minCursor() uint64 {
	min := l.cursors[0].c.Load()
	for i := 1; i < len(l.cursors); i++ {
		if c := l.cursors[i].c.Load(); c < min {
			min = c
		}
	}
	return min
}

// SetStop installs a shutdown callback. Once it returns true, blocked
// Append and Get calls panic with ErrStopped rather than spinning forever.
//
// Blocked operations that have escalated past spinning PARK (see Backoff);
// a parked thread cannot poll the callback. Owners that install a stop
// callback must therefore call Interrupt when the callback's condition
// flips, so parked waiters wake up, re-poll it, and unwind.
func (l *Log[T]) SetStop(f func() bool) { l.stop = f }

// stopFired reports the stop callback's current answer (unconditionally,
// unlike checkStop's panic at poll-due spins). Used to re-check shutdown
// inside the park protocol's Prepare window.
func (l *Log[T]) stopFired() bool { return l.stop != nil && l.stop() }

// The parking-contract debug watch (ROADMAP): an owner that installs
// SetStop but does not Interrupt when the stop condition flips strands
// parked waiters — they cannot poll the callback while asleep. With the
// watch armed (tests; off by default), every park inside a stop-equipped
// Log carries a watchdog: if the watchdog expires with the stop condition
// fired and waiters still parked, the violation handler runs. The default
// handler panics; tests install a capturing handler to catch bad owners
// without taking the process down.
var (
	stopWatchNanos    atomic.Int64
	stopViolationHook atomic.Pointer[func(string)]
)

// SetDebugStopWatch arms (d > 0) or disarms (d <= 0) the parking-contract
// watch and returns the previous setting. The duration is how long a
// parked waiter may coexist with a fired stop condition before the owner
// is reported; pick it well above the owner's legitimate stop→Interrupt
// latency (a few milliseconds in-process).
func SetDebugStopWatch(d time.Duration) time.Duration {
	return time.Duration(stopWatchNanos.Swap(int64(d)))
}

// SetStopViolationHandler replaces the contract-violation report (nil
// restores the default, which panics). The handler may be called from a
// timer goroutine.
func SetStopViolationHandler(f func(string)) {
	if f == nil {
		stopViolationHook.Store(nil)
		return
	}
	stopViolationHook.Store(&f)
}

func reportStopViolation(msg string) {
	stopTrips.Add(1)
	if f := stopViolationHook.Load(); f != nil {
		(*f)(msg)
		return
	}
	panic(msg)
}

// park sleeps on the log's wait set; with the debug stop watch armed and a
// stop callback installed, a watchdog checks for the stranded-waiter
// contract violation and then wakes the set so the waiter re-polls the
// callback and unwinds via ErrStopped. (The unconditional wake also keeps
// the watch alive: a rescued-but-still-waiting waiter re-parks through
// here and arms a fresh watchdog.)
//
// The violation check is two-phase to avoid blaming a compliant owner: a
// single sample at expiry races the legitimate stop→Interrupt handoff
// (stop can flip an instant before the timer fires, with the Interrupt'd
// waiters still inside Park before their waiter-count decrement). The
// watchdog therefore re-checks after a full extra watch period — a
// compliant owner's Interrupt has long since drained the waiters by then,
// while a violator's waiters are still parked because nothing else can
// wake them.
func (l *Log[T]) park(g uint64) {
	parkCount.Add(1)
	d := stopWatchNanos.Load()
	if d <= 0 || l.stop == nil {
		l.waitQ.Park(g)
		return
	}
	tm := time.AfterFunc(time.Duration(d), func() {
		if l.stopFired() && l.waitQ.Waiters() > 0 {
			time.Sleep(time.Duration(d)) // grace: let a compliant Interrupt drain
			if l.stopFired() && l.waitQ.Waiters() > 0 {
				reportStopViolation("ring: stop condition fired while waiters were parked and no Interrupt arrived — the SetStop owner violated the parking contract (see Log.SetStop)")
			}
		}
		l.waitQ.Wake()
	})
	l.waitQ.Park(g)
	tm.Stop()
}

// Parker exposes the log's wait set, so external poll loops over the
// log's state (a monitor waiting on a record, a slave agent waiting on a
// ticket) can park on the same queue the log's own blocking operations
// use. The protocol is futex.Parker's: Prepare, re-check the condition
// (including any kill flag), then Park or Cancel; every publish and every
// cursor advance wakes the set.
func (l *Log[T]) Parker() *futex.Parker { return &l.waitQ }

// Interrupt wakes every thread parked on the log so it re-checks its wait
// condition. Owners must call it when the SetStop callback's condition
// flips (a killed session, a stopped exchange); it is also safe — just
// spurious — at any other time.
func (l *Log[T]) Interrupt() { l.waitQ.Wake() }

// stopPollDue reports whether a blocked operation polls its stop callback
// at this spin count. The schedule matters for teardown latency: the first
// poll must land at the end of the initial busy-spin phase (spin
// busySpins-1), before the loop escalates to pauses and scheduler yields —
// a dead session must not burn tens of extra iterations before noticing.
// Later polls happen every busySpins iterations, which bounds the polling
// cost to a flag load per escalation step.
func stopPollDue(spins int) bool {
	return spins&(busySpins-1) == busySpins-1
}

func (l *Log[T]) checkStop(spins int) {
	if l.stop != nil && stopPollDue(spins) && l.stop() {
		panic(ErrStopped)
	}
}

// Backoff phases, in spin-iteration counts. The boundaries are powers of
// two so stopPollDue can mask instead of divide.
const (
	busySpins  = 16  // phase 1: pure busy loop (counterpart is mid-operation)
	pauseSpins = 64  // phase 2: procyield-style pause, still on-CPU
	parkSpins  = 128 // phase 4: park on a futex.Parker (phase 3 = yields)
)

// parking gates the final escalation phase. It exists for A/B measurement
// (BenchmarkLaggingSlaveWait compares parked waits against the old
// Gosched-forever tail) and stays on in production: a waiter that has
// already burned 128 iterations is far behind, and yielding in a loop
// costs a scheduler transition per iteration forever, where parking costs
// two.
var parking atomic.Bool

func init() { parking.Store(true) }

// SetParking enables or disables the parking phase of blocking waits and
// returns the previous setting. With parking off, waits that pass the
// pause phase fall back to scheduler yields (the pre-parking behavior).
// It exists for benchmarks and tests; production code leaves parking on.
func SetParking(on bool) bool { return parking.Swap(on) }

// ParkDue reports whether a wait at the given spin count should stop
// polling and park on the resource's futex.Parker. Poll loops shared with
// Backoff use it as the escalation test:
//
//	for spins := 0; !ready(); spins++ {
//		if ring.ParkDue(spins) {
//			g := p.Prepare()
//			if ready() || stopped() {
//				p.Cancel()
//				continue
//			}
//			p.Park(g)
//			continue
//		}
//		ring.Backoff(spins)
//	}
//
// The threshold sits past Backoff's busy and pause phases and a few
// scheduler yields: a consumer merely rendezvousing with a mid-operation
// producer never parks, while one that is genuinely behind (a lagging
// slave) stops costing CPU entirely instead of yield-storming.
func ParkDue(spins int) bool {
	return spins >= parkSpins && parking.Load()
}

// pauseSink gives the pause loop a data dependency the compiler cannot
// delete. It is only ever loaded, so the cache line stays shared and the
// loop generates no coherence traffic.
var pauseSink atomic.Uint64

// pause burns a few cycles off the interconnect, approximating the PAUSE /
// YIELD instruction a shared-memory MVEE ring uses between polls: cheaper
// than a scheduler yield, politer than a raw busy loop to the sibling
// hyperthread.
func pause(n int) {
	for i := 0; i < n; i++ {
		_ = pauseSink.Load()
	}
}

// multicore is whether busy-waiting can ever be productive: with a single
// schedulable CPU the counterpart thread cannot be running concurrently,
// so every spin is stolen from it and the only useful move is to yield.
// GOMAXPROCS can change after package init (go test -cpu, explicit
// runtime.GOMAXPROCS calls), so Backoff re-samples it at each wait's
// escalation boundary rather than trusting the init-time snapshot.
var multicore atomic.Bool

func init() { multicore.Store(runtime.GOMAXPROCS(0) > 1) }

// Backoff waits out one failed poll at the given spin count, with
// increasing politeness: a few busy spins (the counterpart is likely
// mid-operation on another core), then procyield-style pauses that stay
// off the interconnect, then scheduler yields. On a single-CPU process it
// yields immediately — spinning there only delays the thread being waited
// on. The MVEE's consumers are latency sensitive (a slave thread waiting
// on its ticket sits on the program's critical path), which is why the
// escalation is gradual rather than jumping straight to the scheduler.
//
// The yield phase is a short bridge, not the terminal state: once ParkDue
// reports true the wait should park on the resource's futex.Parker and
// cost nothing until the producer wakes it. Backoff itself never parks —
// it has no parker to park on — so pure-Backoff loops keep yielding,
// which only the park-aware call sites above avoid.
//
// Backoff is exported for the ring's polling consumers (monitor, agents):
// every TryGet/TryConsumeBatch retry loop in the replication path shares
// this one policy.
func Backoff(spins int) {
	if spins == busySpins {
		// One wait escalated past its busy phase: re-sample the CPU count
		// (a cheap read; GOMAXPROCS(0) takes no lock) so a process moved
		// to one P after init still degrades to immediate yields.
		multicore.Store(runtime.GOMAXPROCS(0) > 1)
	}
	if !multicore.Load() {
		runtime.Gosched()
		return
	}
	switch {
	case spins < busySpins:
		// busy spin
	case spins < pauseSpins:
		pause(8 * (spins - busySpins + 1)) // linearly growing pause
	default:
		runtime.Gosched()
	}
}

func backoff(spins int) { Backoff(spins) }
