package ring

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestLaggingConsumerParksThenWakes(t *testing.T) {
	l := NewLog[int](8, 1)
	got := make(chan int, 1)
	go func() {
		got <- l.Get(3) // published only later: the consumer must park
	}()
	deadline := time.Now().Add(5 * time.Second)
	for l.Parker().Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("consumer never parked on the wait set")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		l.Append(10 + i)
	}
	select {
	case v := <-got:
		if v != 13 {
			t.Fatalf("Get(3) = %d, want 13", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked consumer was not woken by Append")
	}
	if n := l.Parker().Waiters(); n != 0 {
		t.Fatalf("%d waiters left after wake, want 0", n)
	}
}

func TestBackpressuredProducerParksThenWakes(t *testing.T) {
	l := NewLog[int](2, 1)
	l.Append(0)
	l.Append(1)
	done := make(chan struct{})
	go func() {
		l.Append(2) // ring full: the producer must park on back-pressure
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for l.Parker().Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never parked on back-pressure")
		}
		time.Sleep(time.Millisecond)
	}
	l.Advance(0, 0) // cursor advance must wake the parked producer
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parked producer was not woken by Advance")
	}
}

// A stopped log must unblock parked waiters once the owner calls
// Interrupt — the contract SetStop's doc comment spells out.
func TestInterruptUnblocksParkedWaiters(t *testing.T) {
	l := NewLog[int](2, 1)
	var stopped atomic.Bool
	l.SetStop(stopped.Load)
	l.Append(0)
	l.Append(1)
	unwound := make(chan struct{})
	go func() {
		defer func() {
			if recover() == ErrStopped {
				close(unwound)
			}
		}()
		l.Append(2) // parks: ring full, nobody consuming
	}()
	deadline := time.Now().Add(5 * time.Second)
	for l.Parker().Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer never parked")
		}
		time.Sleep(time.Millisecond)
	}
	stopped.Store(true)
	l.Interrupt()
	select {
	case <-unwound:
	case <-time.After(5 * time.Second):
		t.Fatal("parked producer did not unwind after stop+Interrupt")
	}
}

// Park/wake stress with a deliberately lagging consumer group: the fast
// group keeps the producer moving, the lagging group sleeps between
// batches (so it parks and is repeatedly woken), and the producer parks on
// back-pressure whenever the laggard pins the ring. Everything must still
// be delivered exactly once, in order, to both groups. Run under -race in
// CI (the satellite's lagging-slave park/wake stress test).
func TestParkWakeStressLaggingConsumer(t *testing.T) {
	const total = 20000
	l := NewLog[int](64, 2)
	consume := func(g int, lag bool) <-chan error {
		errc := make(chan error, 1)
		go func() {
			var batch [16]int
			next := 0
			for next < total {
				n := l.TryConsumeBatch(g, batch[:])
				if n == 0 {
					spins := 0
					for {
						if l.Ready(l.Cursor(g)) {
							break
						}
						if ParkDue(spins) {
							gen := l.Parker().Prepare()
							if l.Ready(l.Cursor(g)) {
								l.Parker().Cancel()
								break
							}
							l.Parker().Park(gen)
						} else {
							Backoff(spins)
						}
						spins++
					}
					continue
				}
				for i := 0; i < n; i++ {
					if batch[i] != next {
						errc <- fmt.Errorf("group %d: got %d, want %d", g, batch[i], next)
						return
					}
					next++
				}
				if lag && next%512 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
			errc <- nil
		}()
		return errc
	}
	fast := consume(0, false)
	slow := consume(1, true)
	for i := 0; i < total; i++ {
		l.Append(i)
	}
	for _, c := range []<-chan error{fast, slow} {
		select {
		case err := <-c:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("consumer wedged: lost park/wake")
		}
	}
}
