package ring

import (
	"runtime"
	"testing"
)

// The counters are package-global and the test binary shares them across
// tests, so every assertion is on deltas.
func TestMetricsCountBatches(t *testing.T) {
	before := ReadMetrics()
	l := NewLog[int](8, 1)
	l.AppendBatch([]int{1, 2, 3})
	l.AppendBatch(nil) // empty batches are not counted
	out := make([]int, 8)
	if n := l.TryConsumeBatch(0, out); n != 3 {
		t.Fatalf("consumed %d, want 3", n)
	}
	if n := l.TryConsumeBatch(0, out); n != 0 {
		t.Fatalf("consumed %d from drained log, want 0", n)
	}
	after := ReadMetrics()
	if d := after.AppendBatches - before.AppendBatches; d != 1 {
		t.Errorf("append batches delta = %d, want 1", d)
	}
	if d := after.AppendItems - before.AppendItems; d != 3 {
		t.Errorf("append items delta = %d, want 3", d)
	}
	if d := after.ConsumeRuns - before.ConsumeRuns; d != 1 {
		t.Errorf("consume runs delta = %d, want 1", d)
	}
	if d := after.ConsumeItems - before.ConsumeItems; d != 3 {
		t.Errorf("consume items delta = %d, want 3", d)
	}
}

func TestMetricsCountParks(t *testing.T) {
	before := ReadMetrics()
	l := NewLog[int](2, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Blocks — and, with an idle consumer, escalates to a park — on the
		// third append into a capacity-2 ring.
		for i := 0; i < 3; i++ {
			l.Append(i)
		}
	}()
	// The producer must park: nothing drains the ring until we do, so its
	// back-pressure wait escalates past the spin phases.
	for ReadMetrics().Parks == before.Parks {
		runtime.Gosched()
	}
	out := make([]int, 4)
	total := 0
	for total < 3 {
		total += l.TryConsumeBatch(0, out)
	}
	<-done
}
