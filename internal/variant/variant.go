// Package variant models the diversified address-space layout of one MVEE
// variant. Diversity is what makes multi-variant execution a defense: every
// variant places code and data at different addresses, so an exploit that
// hard-codes (or leaks) an address works in at most one variant and causes
// the others to behave differently — which the monitor detects.
//
// Two layout policies from the paper are modelled:
//
//   - ASLR: heap, mmap, code and data bases are randomized per variant.
//   - DCL (Disjoint Code Layouts, [44]): additionally, the code regions of
//     all variants are mutually non-overlapping, so no code address is
//     valid in two variants at once.
//
// The agents never translate addresses between variants; replay is
// positional (§4.5.1). The layouts here exist to keep that property honest:
// every address the programs observe really is different in every variant.
package variant

import (
	"math/rand"
	"sync/atomic"
)

// Space is the diversified address-space layout of one variant.
type Space struct {
	ID int

	brkBase  uint64
	mmapBase uint64
	codeBase uint64
	dataBase uint64

	dataNext atomic.Uint64
	codeNext atomic.Uint64
}

// Region sizes and bases. The constants mirror a 47-bit user address space.
const (
	brkRegion  = 0x0000_1000_0000_0000
	mmapRegion = 0x0000_2000_0000_0000
	codeRegion = 0x0000_4000_0000_0000
	dataRegion = 0x0000_5000_0000_0000

	regionSpan = 0x0000_0100_0000_0000 // randomization span within a region
	dclSlab    = 0x0000_0010_0000_0000 // disjoint code slab per variant
)

// Options selects the diversity techniques applied to a variant.
type Options struct {
	ASLR bool // randomize all bases
	DCL  bool // disjoint code layouts across variants
	Seed int64
}

// NewSpace lays out variant id's address space.
func NewSpace(id int, opts Options) *Space {
	s := &Space{
		ID:       id,
		brkBase:  brkRegion,
		mmapBase: mmapRegion,
		codeBase: codeRegion,
		dataBase: dataRegion,
	}
	if opts.ASLR {
		r := rand.New(rand.NewSource(opts.Seed ^ int64(id+1)*0x9e3779b9))
		page := uint64(4096)
		s.brkBase += uint64(r.Int63n(regionSpan/int64(page))) * page
		s.mmapBase += uint64(r.Int63n(regionSpan/int64(page))) * page
		s.dataBase += uint64(r.Int63n(regionSpan/int64(page))) * page
		if !opts.DCL {
			s.codeBase += uint64(r.Int63n(regionSpan/int64(page))) * page
		}
	}
	if opts.DCL {
		// Mutually disjoint code slabs: variant i's code lives in
		// [codeRegion + i*slab, codeRegion + (i+1)*slab).
		s.codeBase = codeRegion + uint64(id)*dclSlab
		if opts.ASLR {
			r := rand.New(rand.NewSource(opts.Seed ^ int64(id+7)*0x7f4a7c15))
			s.codeBase += uint64(r.Int63n(dclSlab/2/4096)) * 4096
		}
	}
	return s
}

// BrkBase returns the variant's randomized heap base.
func (s *Space) BrkBase() uint64 { return s.brkBase }

// MmapBase returns the variant's randomized mmap base.
func (s *Space) MmapBase() uint64 { return s.mmapBase }

// CodeBase returns the variant's code base.
func (s *Space) CodeBase() uint64 { return s.codeBase }

// AllocData reserves n bytes (8-byte aligned) of static data and returns
// the virtual address. Synchronization variables live here; the addresses
// differ across variants, which is what exercises the agents' positional
// replay.
func (s *Space) AllocData(n uint64) uint64 {
	n = (n + 7) &^ 7
	return s.dataBase + s.dataNext.Add(n) - n
}

// AllocCode reserves n bytes of code and returns its address, modelling a
// function's entry point. Used by the attack-detection experiment: a leaked
// code pointer is only meaningful in one variant.
func (s *Space) AllocCode(n uint64) uint64 {
	n = (n + 15) &^ 15
	return s.codeBase + s.codeNext.Add(n) - n
}

// EpochShift re-randomizes the variant's ALLOCATION CURSORS from seed: the
// diversity-refresh half of a hot restart. Future AllocCode/AllocData
// results jump by a seed-derived, variant-salted stride, so code addresses
// harvested against one worker generation (a leaked gadget pointer) are
// dead in the next — without touching the bases, which concurrent
// allocating threads read locklessly, and without breaking DCL: the
// cumulative shift stays ≤ 2 MiB per epoch, far inside a variant's 64 GiB
// code slab. Addresses already handed out keep their meaning.
func (s *Space) EpochShift(seed int64) {
	h := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(s.ID+1)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	// Strides are alignment-preserving (16 for code, 8 for data) and
	// non-zero, so an epoch always moves the layout.
	s.codeNext.Add((h%(1<<20))&^15 + 16)
	s.dataNext.Add(((h>>20)%(1<<20))&^7 + 8)
}

// CodeOverlaps reports whether the code regions of two spaces overlap; with
// DCL enabled this must always be false.
func CodeOverlaps(a, b *Space, span uint64) bool {
	al, ah := a.codeBase, a.codeBase+span
	bl, bh := b.codeBase, b.codeBase+span
	return al < bh && bl < ah
}
