package variant

import "testing"

func TestNoASLRIsDeterministic(t *testing.T) {
	a := NewSpace(0, Options{})
	b := NewSpace(1, Options{})
	if a.BrkBase() != b.BrkBase() || a.MmapBase() != b.MmapBase() || a.CodeBase() != b.CodeBase() {
		t.Fatal("without ASLR/DCL all variants should share the same layout")
	}
}

func TestASLRDiversifiesBases(t *testing.T) {
	a := NewSpace(0, Options{ASLR: true, Seed: 1})
	b := NewSpace(1, Options{ASLR: true, Seed: 1})
	if a.BrkBase() == b.BrkBase() {
		t.Error("heap bases identical under ASLR")
	}
	if a.MmapBase() == b.MmapBase() {
		t.Error("mmap bases identical under ASLR")
	}
	if a.CodeBase() == b.CodeBase() {
		t.Error("code bases identical under ASLR")
	}
}

func TestASLRIsSeedDeterministic(t *testing.T) {
	a := NewSpace(2, Options{ASLR: true, Seed: 42})
	b := NewSpace(2, Options{ASLR: true, Seed: 42})
	if a.BrkBase() != b.BrkBase() || a.CodeBase() != b.CodeBase() {
		t.Fatal("same seed + id must reproduce the same layout")
	}
	c := NewSpace(2, Options{ASLR: true, Seed: 43})
	if a.BrkBase() == c.BrkBase() {
		t.Error("different seeds produced the same heap base")
	}
}

func TestBasesArePageAligned(t *testing.T) {
	for id := 0; id < 8; id++ {
		s := NewSpace(id, Options{ASLR: true, DCL: true, Seed: 5})
		for name, base := range map[string]uint64{
			"brk": s.BrkBase(), "mmap": s.MmapBase(), "code": s.CodeBase(),
		} {
			if base%4096 != 0 {
				t.Errorf("variant %d %s base %#x not page aligned", id, name, base)
			}
		}
	}
}

func TestDCLCodeRegionsDisjoint(t *testing.T) {
	const span = dclSlab / 2 // generous code span per variant
	spaces := make([]*Space, 4)
	for id := range spaces {
		spaces[id] = NewSpace(id, Options{ASLR: true, DCL: true, Seed: 99})
	}
	for i := 0; i < len(spaces); i++ {
		for j := i + 1; j < len(spaces); j++ {
			if CodeOverlaps(spaces[i], spaces[j], span) {
				t.Errorf("variants %d and %d have overlapping code regions (%#x, %#x)",
					i, j, spaces[i].CodeBase(), spaces[j].CodeBase())
			}
		}
	}
}

func TestAllocDataSequentialAndAligned(t *testing.T) {
	s := NewSpace(0, Options{})
	a := s.AllocData(4)
	b := s.AllocData(1)
	c := s.AllocData(16)
	if a%8 != 0 || b%8 != 0 || c%8 != 0 {
		t.Fatalf("allocations not 8-aligned: %#x %#x %#x", a, b, c)
	}
	if b <= a || c <= b {
		t.Fatalf("allocations not increasing: %#x %#x %#x", a, b, c)
	}
	if b-a < 4 || c-b < 8 {
		t.Fatalf("allocations overlap: %#x %#x %#x", a, b, c)
	}
}

func TestAllocCodeDistinctAddresses(t *testing.T) {
	s := NewSpace(0, Options{DCL: true})
	f1 := s.AllocCode(64)
	f2 := s.AllocCode(64)
	if f1 == f2 {
		t.Fatal("two functions at the same address")
	}
	if f1 < s.CodeBase() || f2 < s.CodeBase() {
		t.Fatal("code allocated below code base")
	}
}

func TestSameSymbolDiffersAcrossVariants(t *testing.T) {
	// The ASLR property the agents must tolerate (§4.5.1): the "same"
	// logical variable has a different address in every variant.
	a := NewSpace(0, Options{ASLR: true, Seed: 3})
	b := NewSpace(1, Options{ASLR: true, Seed: 3})
	if a.AllocData(8) == b.AllocData(8) {
		t.Fatal("first data symbol has the same address in two ASLR variants")
	}
}

func TestConcurrentAllocDataNoOverlap(t *testing.T) {
	s := NewSpace(0, Options{})
	const per = 1000
	results := make(chan uint64, 4*per)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < per; i++ {
				results <- s.AllocData(8)
			}
		}()
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 4*per; i++ {
		addr := <-results
		if seen[addr] {
			t.Fatalf("address %#x allocated twice", addr)
		}
		seen[addr] = true
	}
}
