// Package mvee is the public API of this reproduction of "Taming
// Parallelism in a Multi-Variant Execution Environment" (Volckaert et al.,
// EuroSys 2017).
//
// An MVEE (multi-variant execution environment) runs N diversified variants
// of one program in lockstep, feeding them identical inputs and comparing
// their outputs; memory-corruption exploits that depend on a concrete
// address layout make the variants behave differently, which the monitor
// detects before output escapes. This package adds the paper's missing
// piece: multithreading support via synchronization agents that record the
// master variant's synchronization-operation order and replay it in the
// slave variants, so thread-schedule nondeterminism never looks like an
// attack.
//
// # Quick start
//
//	prog := mvee.Program{Name: "hello", Main: func(t *mvee.Thread) {
//	    mu := mvee.NewMutex(t)
//	    n := 0
//	    h := t.Spawn(func(t *mvee.Thread) { mu.Lock(t); n++; mu.Unlock(t) })
//	    h.Join()
//	    mu.Lock(t); n++; mu.Unlock(t)
//	    mvee.WriteFile(t, "/out", fmt.Sprintf("%d", n))
//	}}
//	res := mvee.Run(mvee.Options{Variants: 2, Agent: mvee.WallOfClocks, ASLR: true}, prog)
//	if res.Divergence != nil { /* attack (or missing instrumentation) */ }
//
// Programs are written against the Thread API: Syscall for kernel services
// (files, pipes, sockets, memory, time) and the instrumented primitives
// (Mutex, SpinLock, Cond, Barrier, Semaphore, RWMutex, Once, WaitGroup)
// for inter-thread communication. All synchronization must go through
// these primitives — the MVEE targets data-race-free programs, exactly
// like the paper (§3).
package mvee

import (
	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/synclib"
	"repro/internal/trace"
)

// AgentKind selects the sync-op replication strategy (§4.5).
type AgentKind = agent.Kind

// The available agents. NoAgent disables replication (single-variant /
// native runs); WallOfClocks is the paper's best performer.
const (
	NoAgent      = agent.None
	TotalOrder   = agent.TotalOrder
	PartialOrder = agent.PartialOrder
	WallOfClocks = agent.WallOfClocks
)

// Policy selects the monitor's comparison policy (§5.1).
type Policy = monitor.Policy

// The available policies.
const (
	StrictLockstep    = monitor.PolicyStrictLockstep
	SecuritySensitive = monitor.PolicySecuritySensitive
)

// Core types, re-exported.
type (
	// Options configures a session: variant count, agent, policy,
	// diversity (ASLR/DCL), and buffer sizes.
	Options = core.Options
	// Program is the code run by every variant.
	Program = core.Program
	// Thread is a variant thread handle: syscalls, sync ops, spawning.
	Thread = core.Thread
	// ThreadHandle joins a spawned thread.
	ThreadHandle = core.ThreadHandle
	// ProcHandle is the parent-side handle of a forked child process
	// (Thread.Fork): its deterministic pid, for Kill/Waitpid.
	ProcHandle = core.ProcHandle
	// SyncVar is an instrumented synchronization variable.
	SyncVar = core.SyncVar
	// Session is an MVEE run in progress.
	Session = core.Session
	// Result summarizes a finished run.
	Result = core.Result
	// Divergence reports why the monitor shut the variants down.
	Divergence = monitor.Divergence
	// Kernel is the simulated kernel ("outside world") of a session.
	Kernel = kernel.Kernel
	// Trace is a recorded execution for offline replay: set Options.Record
	// to produce one (Result.Trace), Options.Replay to re-execute it
	// deterministically. Traces serialize with Encode/Decode.
	Trace = trace.Trace
)

// DecodeTrace reads a serialized execution trace.
var DecodeTrace = trace.Decode

// Instrumented synchronization primitives (the workload-facing
// "libpthread", §5.3).
type (
	// Mutex is a futex-based lock (pthread_mutex).
	Mutex = synclib.Mutex
	// SpinLock is the ad-hoc CAS/store spinlock of Listing 1.
	SpinLock = synclib.SpinLock
	// Cond is a condition variable (pthread_cond).
	Cond = synclib.Cond
	// Barrier is a phase barrier (pthread_barrier).
	Barrier = synclib.Barrier
	// Semaphore is a counting semaphore (sem_t).
	Semaphore = synclib.Semaphore
	// RWMutex is a read-write lock (pthread_rwlock).
	RWMutex = synclib.RWMutex
	// Once runs an initializer exactly once (pthread_once).
	Once = synclib.Once
	// WaitGroup joins fork/join work.
	WaitGroup = synclib.WaitGroup
)

// Constructors for the synchronization primitives.
var (
	NewMutex     = synclib.NewMutex
	NewSpinLock  = synclib.NewSpinLock
	NewCond      = synclib.NewCond
	NewBarrier   = synclib.NewBarrier
	NewSemaphore = synclib.NewSemaphore
	NewRWMutex   = synclib.NewRWMutex
	NewOnce      = synclib.NewOnce
	NewWaitGroup = synclib.NewWaitGroup
)

// The fleet layer: a pool of concurrent MVEE sessions behind a request
// gateway, with divergence quarantine and hot replacement (see
// internal/fleet). Build a FleetConfig (Program + Port + Session
// template), pass it to NewFleet, and submit requests with Fleet.Do; a
// diverged session is quarantined and replaced while the pool keeps
// serving.
type (
	// Fleet is a running session pool; create with NewFleet.
	Fleet = fleet.Fleet
	// FleetConfig sizes and shapes a fleet.
	FleetConfig = fleet.Config
	// FleetStats is the fleet-wide aggregate (throughput, latency
	// percentiles, divergences caught, sessions recycled).
	FleetStats = fleet.Stats
	// Quarantine is the forensic record of one diverged session.
	Quarantine = fleet.Quarantine
	// FleetMember is a point-in-time view of one pool slot.
	FleetMember = fleet.MemberInfo
)

// NewFleet builds the pool, warms every session, and starts the gateway.
var NewFleet = fleet.New

// The gateway dispatch policies.
const (
	FleetRoundRobin  = fleet.RoundRobin
	FleetLeastLoaded = fleet.LeastLoaded
)

// NewSession prepares a session without starting it; use it when the test
// or tool needs the Kernel (to seed files or connect clients) before and
// after the run.
func NewSession(opts Options, prog Program) *Session {
	return core.NewSession(opts, prog)
}

// Run executes prog under the MVEE and blocks until every variant
// finished or the monitor killed the session.
func Run(opts Options, prog Program) *Result {
	return core.Run(opts, prog)
}

// NewKernel creates a stand-alone simulated kernel to pre-populate and
// pass via Options.Kernel.
func NewKernel() *Kernel { return kernel.New() }

// WriteFile writes data to path through monitored open/write/close
// syscalls — the canonical way for a program to emit a result that the
// monitor cross-checks between variants.
func WriteFile(t *Thread, path string, data []byte) bool {
	r := t.Syscall(kernel.SysOpen, [6]uint64{kernel.OCreat | kernel.OWronly | kernel.OTrunc}, []byte(path))
	if !r.Ok() {
		return false
	}
	fd := r.Val
	w := t.Syscall(kernel.SysWrite, [6]uint64{fd}, data)
	t.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
	return w.Ok()
}

// ReadFile reads up to max bytes from path through monitored syscalls;
// the master performs the I/O and the data is replicated to all variants.
func ReadFile(t *Thread, path string, max int) ([]byte, bool) {
	r := t.Syscall(kernel.SysOpen, [6]uint64{kernel.ORdonly}, []byte(path))
	if !r.Ok() {
		return nil, false
	}
	fd := r.Val
	rd := t.Syscall(kernel.SysRead, [6]uint64{fd, uint64(max)}, nil)
	t.Syscall(kernel.SysClose, [6]uint64{fd}, nil)
	if !rd.Ok() {
		return nil, false
	}
	return rd.Data, true
}

// Now returns the session clock via a monitored gettimeofday: identical in
// every variant because the master's reading is replicated.
func Now(t *Thread) uint64 {
	return t.Syscall(kernel.SysGettimeofday, [6]uint64{}, nil).Val
}
