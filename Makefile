GO ?= go

# bench-smoke pipes go test through awk; without pipefail a crashed
# benchmark run would be masked by awk's zero exit.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: build test race bench bench-smoke bugbench vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bugbench runs the concurrency-bug corpus under the race detector: every
# annotated entry (internal/bugbench) must reach its annotated verdict —
# deadlock with the expected cycle, clean, or divergence — across 5 seeds,
# and the armed detector must report nothing on real workload shapes.
bugbench:
	$(GO) test -race -count=1 ./internal/bugbench/

# bench records the perf trajectory into BENCH_9.json (see scripts/bench.sh
# and the README's Performance section for how to read it — compare
# interleaved medians, not single sequential runs).
bench:
	scripts/bench.sh

# bench-smoke is the CI gate: one iteration of every tracked benchmark, no
# JSON rewrite — it proves the benchmarks still build, run, and hold the
# alloc invariants: 0 allocs/op on every BenchmarkReplicationHotPath cell,
# every BenchmarkChaosOverhead cell (the chaos seam must be free when no
# fault fires), and BenchmarkConnectPath (the recv lands in a reusable
# scratch buffer via Call.Buf, so the serving connect path allocates
# nothing at steady state). EventedKeepAlive additionally self-gates the
# replicated records/request quotient (< 4 with batching on).
# ChaosOverhead runs 2000 iterations so the armed-miss cell actually
# exercises the injector consult, not just the first call.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkReplicationHotPath|BenchmarkAgentMicro|BenchmarkWallClockAssignment|BenchmarkPollServer|BenchmarkEventedKeepAlive' -benchmem -benchtime=1x . | \
	awk '{ print } /BenchmarkReplicationHotPath/ && / allocs\/op/ { if ($$(NF-1) != 0) bad = 1 } END { exit bad }'
	$(GO) test -run '^$$' -bench 'BenchmarkChaosOverhead' -benchmem -benchtime=2000x . | \
	awk '{ print } /BenchmarkChaosOverhead/ && / allocs\/op/ { if ($$(NF-1) != 0) bad = 1 } END { exit bad }'
	$(GO) test -run '^$$' -bench 'BenchmarkConnectPath' -benchmem -benchtime=2000x . | \
	awk '{ print } /BenchmarkConnectPath/ && / allocs\/op/ { if ($$(NF-1) != 0) bad = 1 } END { exit bad }'
	$(GO) test -run '^$$' -bench 'BenchmarkDeadlockDetectorOverhead' -benchmem -benchtime=2000x . | \
	awk '{ print } /BenchmarkDeadlockDetectorOverhead/ && / allocs\/op/ { if ($$(NF-1) != 0) bad = 1 } END { exit bad }'
