//go:build ignore

// benchjson converts `go test -bench` output (stdin) into BENCH_<n>.json:
// benchmark name → ns/op, B/op, allocs/op, plus any custom b.ReportMetric
// units. The output file keeps a "baseline" section: on the first run it is
// seeded from the same results; afterwards it is preserved verbatim, so the
// file always carries the pre-PR reference next to the current numbers.
//
// Usage: go test -run '^$' -bench ... -benchmem . | go run scripts/benchjson.go -out BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Iterations  int64              `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type section struct {
	Commit string `json:"commit,omitempty"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	// Method annotates how the numbers were obtained (e.g. "medians of 7
	// interleaved baseline/current pairs" on a host too noisy for
	// sequential captures). Preserved across rewrites.
	Method     string            `json:"method,omitempty"`
	Benchmarks map[string]result `json:"benchmarks"`
}

type file struct {
	Baseline *section `json:"baseline,omitempty"`
	Current  *section `json:"current"`
}

func main() {
	out := flag.String("out", "BENCH_2.json", "output JSON file")
	commit := flag.String("commit", "", "commit id recorded in the section")
	flag.Parse()

	cur := &section{
		Commit:     *commit,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		Benchmarks: map[string]result{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass output through for the console
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Strip the trailing -<GOMAXPROCS> from the name. go test appends
		// it only when GOMAXPROCS > 1, and the converter runs on the same
		// host as the benchmarks, so require the suffix to match our own
		// GOMAXPROCS — a blind "strip any -<number>" ate legitimate name
		// suffixes like payload-64 on single-CPU hosts, collapsing
		// distinct cells into one key.
		name := fields[0]
		if procs := runtime.GOMAXPROCS(0); procs > 1 {
			if suffix := fmt.Sprintf("-%d", procs); strings.HasSuffix(name, suffix) {
				name = name[:len(name)-len(suffix)]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Iterations: iters}
		// The rest are "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[fields[i+1]] = v
			}
		}
		cur.Benchmarks[name] = r
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	var f file
	if prev, err := os.ReadFile(*out); err == nil {
		_ = json.Unmarshal(prev, &f) // a corrupt file just loses its baseline
	}
	if f.Baseline == nil {
		f.Baseline = cur // first run: current numbers become the reference
	}
	f.Current = cur
	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(cur.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
