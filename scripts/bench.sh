#!/usr/bin/env bash
# bench.sh — run the perf-trajectory benchmark set and record it in
# BENCH_<n>.json (benchmark name → ns/op, B/op, allocs/op + custom
# metrics). The file keeps a "baseline" section from its first run (the
# pre-PR reference) and rewrites only "current", so regressions are
# visible by diffing the two sections. On shared/noisy hosts, run it
# several times and compare medians of interleaved baseline/current pairs
# rather than trusting one sequential capture (see README § Performance).
#
#   scripts/bench.sh                 # default set, BENCH_TIME=3x
#   BENCH_TIME=1x scripts/bench.sh   # smoke run (CI)
#   BENCH_PATTERN='BenchmarkFleet.*' scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# The default set tracks the replication hot path and the serving path —
# fast enough to run on every PR. The full paper regeneration
# (Figure5/Table1) is available via BENCH_PATTERN but takes minutes.
PATTERN="${BENCH_PATTERN:-BenchmarkReplicationHotPath|BenchmarkTelemetryMatrix|BenchmarkAgentMicro|BenchmarkWallClockAssignment|BenchmarkNginxThroughput|BenchmarkEventedKeepAlive|BenchmarkPolicyComparison|BenchmarkConnectPath|BenchmarkLaggingSlaveWait|BenchmarkPollServer|BenchmarkPreforkServer|BenchmarkHotRestart|BenchmarkChaosOverhead|BenchmarkDeadlockDetectorOverhead}"
TIME="${BENCH_TIME:-3x}"
OUT="${BENCH_OUT:-BENCH_10.json}"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" . |
  go run scripts/benchjson.go -out "$OUT" -commit "$COMMIT"
