// Command mvee-bench regenerates the paper's evaluation: Table 1
// (aggregated agent slowdowns), Table 2 (native rates), Table 3 (sync-op
// identification), Figure 5 (per-benchmark overhead series), and the §5.5
// nginx throughput experiment.
//
// Usage:
//
//	mvee-bench -table 1            # aggregated slowdowns, 2-4 variants
//	mvee-bench -table 2            # native run times and rates
//	mvee-bench -table 3            # sync-op identification per library
//	mvee-bench -figure 5           # per-benchmark overhead series
//	mvee-bench -nginx              # §5.5 server throughput overhead
//	mvee-bench -all -scale 0.5     # everything, at half work scale
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/agent"
	"repro/internal/analysis"
	"repro/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate table 1, 2 or 3")
	figure := flag.Int("figure", 0, "regenerate figure 5")
	nginx := flag.Bool("nginx", false, "run the §5.5 nginx throughput experiment")
	all := flag.Bool("all", false, "run everything")
	scale := flag.Float64("scale", 1.0, "work-unit scale factor for all workloads")
	reps := flag.Int("reps", 1, "repetitions per measurement (minimum kept)")
	workers := flag.Int("workers", 4, "worker threads per variant")
	maxVariants := flag.Int("max-variants", 4, "largest variant count measured")
	steensgaard := flag.Bool("steensgaard", false, "use the Steensgaard points-to analysis for table 3 (default Andersen)")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Workers: *workers, Reps: *reps}
	variantCounts := []int{}
	for n := 2; n <= *maxVariants; n++ {
		variantCounts = append(variantCounts, n)
	}
	agents := []agent.Kind{agent.TotalOrder, agent.PartialOrder, agent.WallOfClocks}

	ran := false
	if *all || *table == 2 {
		ran = true
		fmt.Println("== Table 2: native run times, system call and sync op rates ==")
		tbl, _ := bench.Table2(cfg)
		fmt.Println(tbl)
	}
	if *all || *table == 3 {
		ran = true
		kind := analysis.UseAndersen
		name := "Andersen/SVF-style"
		if *steensgaard {
			kind = analysis.UseSteensgaard
			name = "Steensgaard/DSA-style"
		}
		fmt.Printf("== Table 3: sync ops identified (%s stage-2 analysis) ==\n", name)
		tbl, _ := bench.Table3(kind)
		fmt.Println(tbl)
	}
	if *all || *figure == 5 {
		ran = true
		fmt.Println("== Figure 5: relative overhead per benchmark (agents x variants) ==")
		tbl, _ := bench.Figure5(cfg, agents, variantCounts)
		fmt.Println(tbl)
	}
	if *all || *table == 1 {
		ran = true
		fmt.Println("== Table 1: aggregated average slowdowns ==")
		tbl, _ := bench.Table1(cfg, variantCounts)
		fmt.Println(tbl)
	}
	if *all || *nginx {
		ran = true
		fmt.Println("== §5.5: nginx-style server, loopback throughput ==")
		nat, mv, ov := bench.Nginx(2, 10, 50)
		fmt.Printf("native:   %8.0f req/s\n", nat)
		fmt.Printf("2-variant:%8.0f req/s\n", mv)
		fmt.Printf("overhead: %8.1f%%   (paper: 48%% on loopback, 3%% over gigabit LAN)\n", ov*100)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
