// Command mvee-top renders a running fleet's syscall matrix and health
// from its admin plane (mvee-serve -admin), one-shot or continuously:
//
//	mvee-top -addr 127.0.0.1:9090            # one snapshot
//	mvee-top -addr 127.0.0.1:9090 -watch 1s  # refresh until interrupted
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/admin"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "admin-plane address of a running mvee-serve")
	watch := flag.Duration("watch", 0, "refresh interval (0 = render once and exit)")
	flag.Parse()

	for {
		snap, err := fetch(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mvee-top:", err)
			os.Exit(1)
		}
		if *watch > 0 {
			fmt.Print("\033[H\033[2J") // clear: top-style refresh
		}
		render(snap)
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
	}
}

func fetch(addr string) (admin.Snapshot, error) {
	var snap admin.Snapshot
	resp, err := http.Get("http://" + addr + "/api/snapshot")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET /api/snapshot: status %s", resp.Status)
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

func render(s admin.Snapshot) {
	st := s.Stats
	fmt.Printf("fleet up %.1fs: %d served (%.0f req/s), %d errors, %d rejected | %d healthy | div %d crash %d recycled %d\n",
		st.UptimeSeconds, st.Served, st.Throughput, st.Errors, st.Rejected,
		st.Healthy, st.Divergences, st.Crashes, st.Recycled)
	fmt.Printf("request latency: p50 %v p90 %v p99 %v max %v (%d samples)\n",
		time.Duration(st.LatencyP50Ns), time.Duration(st.LatencyP90Ns),
		time.Duration(st.LatencyP99Ns), time.Duration(st.LatencyMaxNs), st.LatencyCount)
	fmt.Printf("waits: ring parks %d, futex parks %d / wakes %d, batched appends %d (%d items)\n\n",
		s.Ring.Parks, s.Futex.Parks, s.Futex.Wakes, s.Ring.AppendBatches, s.Ring.AppendItems)

	for _, m := range s.Members {
		state := "healthy"
		if !m.Healthy {
			state = "down"
		}
		fmt.Printf("slot %d gen %d: %-7s inflight %d served %d syscalls %d procs %d\n",
			m.Slot, m.Gen, state, m.Inflight, m.Served, m.Syscalls, len(m.Procs))
	}

	fmt.Println()
	fmt.Print(admin.MatrixTable(s.Telemetry))

	if n := len(s.Quarantined); n > 0 {
		fmt.Printf("\n%d quarantined session(s); latest:\n", n)
		q := s.Quarantined[n-1]
		fmt.Printf("  slot %d gen %d seed %d: %s\n", q.Slot, q.Gen, q.Seed, q.Reason)
		for v, tail := range q.Flight {
			if len(tail) == 0 {
				continue
			}
			fmt.Printf("  variant %d flight tail ends: %s\n", v, tail[len(tail)-1])
		}
	}
}
