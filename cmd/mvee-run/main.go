// Command mvee-run executes one modelled benchmark under the MVEE.
//
// Usage:
//
//	mvee-run -list
//	mvee-run -workload dedup -agent woc -variants 2
//	mvee-run -workload radiosity -agent to -variants 4 -policy sensitive
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "", "benchmark to run (see -list)")
	list := flag.Bool("list", false, "list available benchmarks")
	agentName := flag.String("agent", "woc", "sync agent: to | po | woc | none")
	variants := flag.Int("variants", 2, "number of variants")
	workers := flag.Int("workers", 4, "worker threads")
	units := flag.Int("units", 0, "work units (0 = benchmark default)")
	policyName := flag.String("policy", "strict", "monitor policy: strict | sensitive")
	seed := flag.Int64("seed", 1, "layout randomization seed")
	recordPath := flag.String("record", "", "record the execution trace to this file")
	replayPath := flag.String("replay", "", "replay a recorded execution trace from this file")
	flag.Parse()

	if *list {
		fmt.Println("available benchmarks (PARSEC 2.1 + SPLASH-2x models):")
		for _, b := range workload.All() {
			fmt.Printf("  %-16s %-7s %s\n", b.Name, b.Suite, b.Shape)
		}
		return
	}
	b, err := workload.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "use -list to see available benchmarks")
		os.Exit(2)
	}
	kind, err := parseAgent(*agentName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	policy := monitor.PolicyStrictLockstep
	if strings.HasPrefix(*policyName, "sens") {
		policy = monitor.PolicySecuritySensitive
	}

	opts := core.Options{
		Variants: *variants, Agent: kind, Policy: policy,
		ASLR: true, Seed: *seed, MaxThreads: 64,
		Record: *recordPath != "",
	}
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err := trace.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Replay = tr
		fmt.Printf("replaying trace of %q (%d sync ops, %d syscalls)\n",
			tr.Program, tr.Ops(), tr.Calls())
	}
	res := core.Run(opts, b.Build(workload.Params{Workers: *workers, Units: *units}))
	if res.Trace != nil {
		f, err := os.Create(*recordPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := res.Trace.Encode(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("trace     : %d sync ops, %d syscalls -> %s\n",
			res.Trace.Ops(), res.Trace.Calls(), *recordPath)
	}

	fmt.Printf("benchmark : %s (%s, %s)\n", b.Name, b.Suite, b.Shape)
	fmt.Printf("agent     : %v, %d variants, policy %v\n", kind, *variants, policy)
	fmt.Printf("duration  : %v\n", res.Duration)
	fmt.Printf("syscalls  : %d (%.0f/s)\n", res.Syscalls,
		float64(res.Syscalls)/res.Duration.Seconds())
	fmt.Printf("sync ops  : %d (%.0f/s)\n", res.SyncOps,
		float64(res.SyncOps)/res.Duration.Seconds())
	fmt.Printf("stalls    : %d\n", res.Stalls)
	if res.Divergence != nil {
		fmt.Printf("DIVERGED  : %v\n", res.Divergence)
		os.Exit(1)
	}
	fmt.Println("status    : all variants in lockstep, no divergence")
}

func parseAgent(s string) (agent.Kind, error) {
	switch strings.ToLower(s) {
	case "to", "total", "total-order":
		return agent.TotalOrder, nil
	case "po", "partial", "partial-order":
		return agent.PartialOrder, nil
	case "woc", "wall", "wall-of-clocks":
		return agent.WallOfClocks, nil
	case "none":
		return agent.None, nil
	}
	return agent.None, fmt.Errorf("unknown agent %q (want to|po|woc|none)", s)
}
