// Command mvee-serve runs the §5.5 nginx-model server as a FLEET: a pool
// of concurrent MVEE sessions behind a request gateway, with divergence
// quarantine and hot replacement. It drives a configurable client load
// through the gateway (the simulated kernels have no real network, so the
// load generator is built in), optionally injects layout-targeted exploit
// payloads mid-run, and prints the fleet-wide stats plus every quarantine
// record.
//
// Usage:
//
//	mvee-serve -pool 4 -variants 2 -agent woc -conns 16 -requests 50
//	mvee-serve -pool 4 -attacks 2                    # inject 2 exploits mid-run
//	mvee-serve -pool 2 -no-instrument -forensics     # §5.5 benign-divergence churn
//	mvee-serve -pool 8 -dispatch least -policy sensitive
//	mvee-serve -pool 4 -evented -attacks 1           # event-driven (poll) serving mode
//	mvee-serve -pool 4 -evented -no-batch            # A/B: per-call readiness replication
//	mvee-serve -pool 2 -prefork -worker-procs 4      # multi-process (fork) serving mode
//	mvee-serve -prefork -worker-threads 4 -reloads 3 # multi-threaded workers, 3 hot restarts under load
//	mvee-serve -pool 4 -admin 127.0.0.1:9090         # live /metrics, /statusz, pprof
//	mvee-serve -admin :9090 -linger 60s              # stay up after the load for scraping
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/admin"
	"repro/internal/agent"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/variant"
	"repro/internal/webserver"
)

func main() {
	pool := flag.Int("pool", 4, "number of concurrent MVEE sessions in the pool")
	variants := flag.Int("variants", 2, "variants per session")
	agentName := flag.String("agent", "woc", "sync agent per session: to | po | woc | none")
	policyName := flag.String("policy", "strict", "monitor policy: strict | sensitive")
	dispatch := flag.String("dispatch", "rr", "gateway dispatch: rr | least")
	conns := flag.Int("conns", 16, "concurrent gateway clients")
	requests := flag.Int("requests", 50, "requests per client")
	queueCap := flag.Int("queue", 256, "gateway queue bound (backpressure)")
	workers := flag.Int("workers", 0, "gateway workers (0 = 2*pool)")
	poolThreads := flag.Int("threads", 8, "server worker threads per session (thread-pool mode)")
	evented := flag.Bool("evented", false, "event-driven serving: one thread per session multiplexing connections via poll")
	noBatch := flag.Bool("no-batch", false, "disable poll-wakeup batching: replicate each ready connection's recv as its own handoff (evented mode)")
	prefork := flag.Bool("prefork", false, "multi-process serving: the parent forks worker processes sharing the listener, reaping and re-forking them on death")
	workerProcs := flag.Int("worker-procs", 4, "prefork worker processes per session")
	workerThreads := flag.Int("worker-threads", 1, "accept threads per prefork worker process")
	reloads := flag.Int("reloads", 0, "zero-downtime hot restarts (SIGHUP sweeps) spaced through the load (prefork mode)")
	pageSize := flag.Int("page", 4096, "static page size served")
	seed := flag.Int64("seed", 2028, "base diversity seed")
	attacks := flag.Int("attacks", 0, "exploit payloads injected mid-run (forces -vulnerable)")
	noInstrument := flag.Bool("no-instrument", false, "leave the custom spinlock uninstrumented (§5.5 benign-divergence churn)")
	forensics := flag.Bool("forensics", false, "record sessions so quarantines carry a replayable trace")
	adminAddr := flag.String("admin", "", "serve the admin plane (/metrics, /statusz, /api/snapshot, /debug/pprof) on this host:port")
	linger := flag.Duration("linger", 0, "keep the fleet (and admin plane) up this long after the load completes")
	inject := flag.String("inject", "", `chaos fault plan, e.g. "target=listener latency=+2ms error=3% short-reads seed=7" (';' separates rules)`)
	timeScale := flag.Float64("time-scale", 1, "run the kernel clocks N x faster than wall time (scales injected latencies and kernel timeouts)")
	flag.Parse()

	if *pool < 1 {
		*pool = 1
	}
	if *evented && *prefork {
		fmt.Fprintln(os.Stderr, "mvee-serve: -evented and -prefork are mutually exclusive serving modes")
		os.Exit(2)
	}
	kind, err := parseAgent(*agentName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	policy := monitor.PolicyStrictLockstep
	if strings.HasPrefix(*policyName, "sens") {
		policy = monitor.PolicySecuritySensitive
	}

	wcfg := webserver.Config{
		Port: 8080, PoolThreads: *poolThreads, PageSize: *pageSize,
		InstrumentCustomSync: !*noInstrument,
		Vulnerable:           *attacks > 0,
		Evented:              *evented,
		NoBatchWakeups:       *noBatch,
		Prefork:              *prefork,
		Workers:              *workerProcs,
		WorkerThreads:        *workerThreads,
	}
	// Tids are never recycled, so a prefork session must budget for every
	// generation it will ever fork: each hot restart spends another
	// worker-procs x worker-threads tids (plus the readiness plumbing).
	maxThreads := 64
	if *prefork {
		if need := (*reloads + 2) * (*workerProcs) * (*workerThreads) * 2; need > maxThreads {
			maxThreads = need
		}
	}
	sess := core.Options{
		Variants: *variants, Agent: kind, Policy: policy,
		ASLR: true, DCL: true, Seed: *seed, MaxThreads: maxThreads,
		TimeScale: *timeScale,
	}
	plan, err := chaos.Parse(*inject)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvee-serve:", err)
		os.Exit(2)
	}
	injector := chaos.New(plan)
	if injector != nil {
		// One injector shared by the whole pool: the fault decisions stay
		// seeded and reproducible per total call order, and the admin
		// counters aggregate naturally.
		sess.Inject = injector
	}
	fcfg := webserver.FleetConfig(wcfg, sess, *pool)
	fcfg.QueueCap = *queueCap
	fcfg.Workers = *workers
	fcfg.Forensics = *forensics
	if *timeScale > 0 && *timeScale != 1 {
		// The request watchdog must tick on the same accelerated time the
		// sessions run on, or a 10x-scaled injected latency could outlive
		// a wall-clock RequestTimeout.
		fcfg.Clock = kernel.NewScaledClock(*timeScale)
	}
	if strings.HasPrefix(*dispatch, "least") {
		fcfg.Dispatch = fleet.LeastLoaded
	}

	fmt.Printf("warming %d sessions x %d variants (%s agent, %s policy)...\n",
		*pool, *variants, *agentName, *policyName)
	f, err := fleet.New(fcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	if *adminAddr != "" {
		srv := admin.New(f)
		bound, err := srv.Start(*adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("admin plane on http://%s (/metrics /statusz /api/snapshot /debug/pprof)\n", bound)
	}

	// The load: conns clients, each issuing `requests` gateway requests.
	// Every 8th request probes /count, the endpoint that exposes the
	// custom-lock-protected counter — under -no-instrument this is what
	// surfaces the §5.5 benign divergence once traffic flows.
	var wg sync.WaitGroup
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < *requests; r++ {
				req := []byte("GET /")
				if r%8 == 7 {
					req = []byte("GET /count")
				}
				f.Do(req)
			}
		}()
	}

	// The adversary: layout-targeted exploit payloads (the CVE-2013-2028
	// model), spaced through the run. Each one burns at most one session;
	// the fleet quarantines and hot-replaces it.
	if *attacks > 0 {
		gadget := variant.NewSpace(0, variant.Options{ASLR: true, DCL: true, Seed: *seed}).AllocCode(64)
		payload := []byte(fmt.Sprintf("POST /upload %x", gadget))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := 0; a < *attacks; a++ {
				time.Sleep(5 * time.Millisecond)
				if resp, err := f.Do(payload); err == nil && strings.Contains(string(resp), "PWNED") {
					// Expected with -variants 1 (nothing to cross-check);
					// a real detection failure with >= 2 variants.
					fmt.Println("!! leak escaped the MVEE:", string(resp))
				}
			}
		}()
	}
	// Hot restarts, spaced through the run: each sweep SIGHUPs every healthy
	// member, whose prefork parent drains the old worker generation into a
	// freshly re-randomized one without dropping a request.
	if *reloads > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < *reloads; i++ {
				time.Sleep(10 * time.Millisecond)
				n := f.Reload()
				fmt.Printf("hot restart %d/%d signalled to %d member(s)\n", i+1, *reloads, n)
			}
		}()
	}
	wg.Wait()

	fmt.Println()
	fmt.Println("== fleet stats ==")
	fmt.Print(fleet.StatsTable(f.Stats()))

	if injector != nil {
		snap := f.Snapshot()
		fmt.Printf("\n== chaos ==\nplan: %s\nfaults injected: %d (latency %d, error %d, timeout %d, short %d)\n",
			plan, snap.Faults.Total(), snap.Faults.Latency, snap.Faults.Errors,
			snap.Faults.Timeouts, snap.Faults.Shorts)
	}

	if quars := f.Quarantined(); len(quars) > 0 {
		fmt.Println("\n== quarantined sessions ==")
		for i, q := range quars {
			fmt.Printf("[%d] slot %d gen %d seed %d: served %d requests over %v (%d syscalls, %d sync ops)\n",
				i, q.Slot, q.Gen, q.Seed, q.Served, q.Uptime.Round(time.Microsecond), q.Syscalls, q.SyncOps)
			if q.Divergence != nil {
				fmt.Printf("    %v\n", q.Divergence)
			} else {
				fmt.Printf("    program crash: %v\n", q.Panic)
			}
			if q.Trace != nil {
				fmt.Printf("    forensic trace captured: replayable offline\n")
			}
		}
	}
	fmt.Println("\n== pool members ==")
	for _, m := range f.Snapshot().Members {
		state := "healthy"
		if !m.Healthy {
			state = "down"
		}
		fmt.Printf("slot %d: gen %d seed %-12d epoch %d/%-12d %-7s served %d\n",
			m.Slot, m.Gen, m.Seed, m.Epoch, m.EpochSeed, state, m.Served)
	}

	if *linger > 0 {
		fmt.Printf("\nlingering %v for admin scrapes...\n", *linger)
		time.Sleep(*linger)
	}
}

func parseAgent(s string) (agent.Kind, error) {
	switch strings.ToLower(s) {
	case "to", "totalorder":
		return agent.TotalOrder, nil
	case "po", "partialorder":
		return agent.PartialOrder, nil
	case "woc", "wallofclocks":
		return agent.WallOfClocks, nil
	case "none":
		return agent.None, nil
	}
	return agent.None, fmt.Errorf("unknown agent %q (want to | po | woc | none)", s)
}
