// Command syncid runs the two-stage sync-op identification analysis (§4.3)
// over the synthetic library corpora and prints Table 3. It can run either
// stage-2 points-to analysis and, with -diff, show where the
// Steensgaard-style analysis over-approximates the Andersen-style one
// (the precision gap discussed in §4.3.1).
package main

import (
	"flag"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/bench"
)

func main() {
	steensgaard := flag.Bool("steensgaard", false, "use the Steensgaard (DSA-style) stage-2 analysis")
	diff := flag.Bool("diff", false, "compare Andersen vs Steensgaard type (iii) counts")
	flag.Parse()

	if *diff {
		fmt.Println("stage-2 precision comparison (type (iii) ops flagged):")
		fmt.Printf("%-22s %10s %12s\n", "unit", "andersen", "steensgaard")
		for _, spec := range analysis.Table3Specs() {
			u := analysis.Generate(spec)
			and := analysis.Analyze(u, analysis.UseAndersen)
			ste := analysis.Analyze(u, analysis.UseSteensgaard)
			fmt.Printf("%-22s %10d %12d\n", spec.Name, and.CountIII, ste.CountIII)
		}
		return
	}
	kind := analysis.UseAndersen
	name := "Andersen (SVF-style)"
	if *steensgaard {
		kind = analysis.UseSteensgaard
		name = "Steensgaard (DSA-style)"
	}
	fmt.Printf("Table 3 — sync ops identified, stage 2 = %s\n\n", name)
	tbl, reps := bench.Table3(kind)
	fmt.Println(tbl)
	total := 0
	for _, r := range reps {
		total += len(r.Ops)
	}
	fmt.Printf("total sync ops identified: %d across %d units\n", total, len(reps))
}
