package mvee

import (
	"fmt"
	"testing"
	"time"
)

// runP runs a program through the public API with a deadlock guard.
func runP(t *testing.T, opts Options, prog Program) (*Session, *Result) {
	t.Helper()
	s := NewSession(opts, prog)
	done := make(chan *Result, 1)
	go func() { done <- s.Run() }()
	select {
	case res := <-done:
		return s, res
	case <-time.After(60 * time.Second):
		s.Kill()
		t.Fatal("deadlock")
		return nil, nil
	}
}

func TestPublicAPIQuickstart(t *testing.T) {
	prog := Program{Name: "api", Main: func(th *Thread) {
		mu := NewMutex(th)
		n := 0
		h := th.Spawn(func(th *Thread) {
			for i := 0; i < 100; i++ {
				mu.Lock(th)
				n++
				mu.Unlock(th)
			}
		})
		for i := 0; i < 100; i++ {
			mu.Lock(th)
			n++
			mu.Unlock(th)
		}
		h.Join()
		if !WriteFile(th, "/api-out", []byte(fmt.Sprintf("%d", n))) {
			t.Error("WriteFile failed")
		}
	}}
	s, res := runP(t, Options{Variants: 2, Agent: WallOfClocks, ASLR: true}, prog)
	if res.Divergence != nil {
		t.Fatalf("divergence: %v", res.Divergence)
	}
	got, ok := s.Kernel().ReadFile("/api-out")
	if !ok || string(got) != "200" {
		t.Fatalf("output = %q", got)
	}
}

func TestPublicReadFileReplicates(t *testing.T) {
	kern := NewKernel()
	kern.WriteFile("/seed", []byte("hello"))
	prog := Program{Name: "readfile", Main: func(th *Thread) {
		data, ok := ReadFile(th, "/seed", 64)
		if !ok {
			t.Error("ReadFile failed")
			return
		}
		WriteFile(th, "/echo", data)
	}}
	s, res := runP(t, Options{Variants: 3, Agent: WallOfClocks, ASLR: true, Kernel: kern}, prog)
	if res.Divergence != nil {
		t.Fatalf("divergence: %v", res.Divergence)
	}
	got, _ := s.Kernel().ReadFile("/echo")
	if string(got) != "hello" {
		t.Fatalf("echo = %q", got)
	}
}

func TestPublicNowIsReplicatedAndMonotonic(t *testing.T) {
	prog := Program{Name: "now", Main: func(th *Thread) {
		t1 := Now(th)
		t2 := Now(th)
		if t2 <= t1 {
			t.Errorf("Now not increasing: %d then %d", t1, t2)
		}
		WriteFile(th, "/now", []byte(fmt.Sprintf("%d-%d", t1, t2)))
	}}
	_, res := runP(t, Options{Variants: 2, Agent: WallOfClocks}, prog)
	if res.Divergence != nil {
		t.Fatalf("timestamps differ across variants: %v", res.Divergence)
	}
}

func TestPublicAllPrimitiveConstructors(t *testing.T) {
	prog := Program{Name: "prims", Main: func(th *Thread) {
		mu := NewMutex(th)
		sl := NewSpinLock(th)
		cv := NewCond(th)
		bar := NewBarrier(th, 1)
		sem := NewSemaphore(th, 1)
		rw := NewRWMutex(th)
		once := NewOnce(th)
		wg := NewWaitGroup(th)

		mu.Lock(th)
		mu.Unlock(th)
		sl.Lock(th)
		sl.Unlock(th)
		_ = cv
		bar.Wait(th)
		sem.Acquire(th)
		sem.Release(th)
		rw.RLock(th)
		rw.RUnlock(th)
		n := 0
		once.Do(th, func() { n++ })
		once.Do(th, func() { n++ })
		wg.Add(th, 1)
		wg.Done(th)
		wg.Wait(th)
		WriteFile(th, "/prims", []byte(fmt.Sprintf("%d", n)))
	}}
	s, res := runP(t, Options{Variants: 2, Agent: TotalOrder, ASLR: true}, prog)
	if res.Divergence != nil {
		t.Fatalf("divergence: %v", res.Divergence)
	}
	got, _ := s.Kernel().ReadFile("/prims")
	if string(got) != "1" {
		t.Fatalf("once ran %s times", got)
	}
}

func TestPublicPolicyConstants(t *testing.T) {
	if StrictLockstep == SecuritySensitive {
		t.Fatal("policies collide")
	}
	if NoAgent == WallOfClocks || TotalOrder == PartialOrder {
		t.Fatal("agent kinds collide")
	}
}
