// Benchmarks regenerating the paper's evaluation (§5). One benchmark per
// table/figure; see DESIGN.md's experiment index for what each one
// regenerates and which substitutions apply. cmd/mvee-bench prints the
// same data as formatted tables.
//
// Custom metrics:
//
//	slowdown      relative run time vs native (the Figure 5 / Table 1 quantity)
//	syscalls/s    monitored system calls per second (Table 2)
//	syncops/s     synchronization operations per second (Table 2)
//	stalls/op     slave stalls per sync op (agent efficiency)
package mvee

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dmt"
	"repro/internal/fleet"
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/ring"
	"repro/internal/telemetry"
	"repro/internal/variant"
	"repro/internal/webserver"
	"repro/internal/workload"
)

// benchCfg keeps bench runtime moderate; raise Scale for longer runs.
var benchCfg = bench.Config{Scale: 1, Workers: 4, Reps: 1, Seed: 7}

// fig5Agents and fig5Variants are the Figure 5 axes.
var fig5Agents = []agent.Kind{agent.TotalOrder, agent.PartialOrder, agent.WallOfClocks}

func agentTag(k agent.Kind) string {
	switch k {
	case agent.TotalOrder:
		return "TO"
	case agent.PartialOrder:
		return "PO"
	case agent.WallOfClocks:
		return "WoC"
	}
	return "none"
}

// BenchmarkTable2Native regenerates Table 2: native run time, syscall rate
// and sync-op rate for every benchmark (single variant, no MVEE).
func BenchmarkTable2Native(b *testing.B) {
	for _, w := range workload.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			b.ReportAllocs()
			var last bench.Run
			for i := 0; i < b.N; i++ {
				last = bench.Measure(w, benchCfg, agent.None, 1)
			}
			b.ReportMetric(last.SyscallRate(), "syscalls/s")
			b.ReportMetric(last.SyncRate(), "syncops/s")
			b.ReportMetric(last.Duration.Seconds()*1000, "ms/run")
		})
	}
}

// BenchmarkFigure5 regenerates the Figure 5 series: per benchmark, per
// agent, per variant count, the slowdown relative to native execution.
func BenchmarkFigure5(b *testing.B) {
	for _, w := range workload.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			b.ReportAllocs()
			native := bench.Measure(w, benchCfg, agent.None, 1)
			for _, k := range fig5Agents {
				for _, nv := range []int{2, 3, 4} {
					k, nv := k, nv
					b.Run(fmt.Sprintf("%s/%dv", agentTag(k), nv), func(b *testing.B) {
						b.ReportAllocs()
						var last bench.Run
						for i := 0; i < b.N; i++ {
							last = bench.Measure(w, benchCfg, k, nv)
						}
						if last.Diverged {
							b.Fatalf("%s diverged under %v", w.Name, k)
						}
						sd := float64(last.Duration) / float64(native.Duration)
						b.ReportMetric(sd, "slowdown")
						if last.SyncOps > 0 {
							b.ReportMetric(float64(last.Stalls)/float64(last.SyncOps), "stalls/op")
						}
					})
				}
			}
		})
	}
}

// BenchmarkTable1Aggregated regenerates Table 1: the aggregated average
// slowdown of each agent at 2-4 variants over the full suite.
//
// The sweep runs at reduced work scale: the partial-order agent's window
// scanning is superlinear in backlog, and at full scale its 4-variant
// cells on sync-heavy benchmarks can take minutes on a small host — the
// very scalability pathology §4.5 describes. The aggregate shape is
// unchanged by the scale.
func BenchmarkTable1Aggregated(b *testing.B) {
	table1Cfg := benchCfg
	table1Cfg.Scale = 0.35
	for _, k := range fig5Agents {
		for _, nv := range []int{2, 3, 4} {
			k, nv := k, nv
			b.Run(fmt.Sprintf("%s/%dv", agentTag(k), nv), func(b *testing.B) {
				b.ReportAllocs()
				var avg float64
				for i := 0; i < b.N; i++ {
					var sum float64
					n := 0
					for _, w := range workload.All() {
						native := bench.Measure(w, table1Cfg, agent.None, 1)
						m := bench.Measure(w, table1Cfg, k, nv)
						if m.Diverged {
							b.Fatalf("%s diverged", w.Name)
						}
						sum += float64(m.Duration) / float64(native.Duration)
						n++
					}
					avg = sum / float64(n)
				}
				b.ReportMetric(avg, "slowdown")
			})
		}
	}
}

// BenchmarkTable3Analysis regenerates Table 3: the two-stage sync-op
// identification over the library corpora, for both stage-2 analyses.
func BenchmarkTable3Analysis(b *testing.B) {
	for _, tc := range []struct {
		name string
		kind analysis.PointsToKind
	}{
		{"andersen", analysis.UseAndersen},
		{"steensgaard", analysis.UseSteensgaard},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, spec := range analysis.Table3Specs() {
					rep := analysis.Analyze(analysis.Generate(spec), tc.kind)
					total += len(rep.Ops)
				}
			}
			b.ReportMetric(float64(total), "syncops-found")
		})
	}
}

// BenchmarkNginxThroughput regenerates the §5.5 loopback throughput
// experiment: native vs 2-variant WoC (strict lockstep monitor policy),
// 8 connections x 100 requests per measurement — long enough that the
// sustained serving path, not session warmup, dominates the mvee-req/s
// metric. On shared hosts compare interleaved medians (see BENCH_2.json's
// method note); absolute numbers drift with the box. records/req is the
// master's monitored-record count per served response — the replication
// bill the batching + zero-copy work cuts toward the native line.
func BenchmarkNginxThroughput(b *testing.B) {
	b.ReportAllocs()
	var native, mv, overhead, recs float64
	for i := 0; i < b.N; i++ {
		native, mv, overhead, recs = bench.NginxCell(2, 8, 100, false, true)
	}
	b.ReportMetric(native, "native-req/s")
	b.ReportMetric(mv, "mvee-req/s")
	b.ReportMetric(overhead*100, "overhead-%")
	b.ReportMetric(recs, "records/req")
}

// BenchmarkEventedKeepAlive is the §5.5 cell closest to production nginx:
// the evented (single-thread poll) serving mode under keep-alive load,
// where one wakeup's worth of ready connections is replicated as ONE
// multi-record batch. The batch=off cell is the A-B control — identical
// traffic, every recv replicated as its own record — so the delta between
// the two cells is the cross-core handoff cost the batching removes.
// records/req must stay below 4 on the batch=on cell (recv + sendfile +
// amortized poll); that is the acceptance gate for the replication bill.
func BenchmarkEventedKeepAlive(b *testing.B) {
	for _, batch := range []bool{true, false} {
		batch := batch
		b.Run("batch="+onOff(batch), func(b *testing.B) {
			b.ReportAllocs()
			var native, mv, overhead, recs float64
			for i := 0; i < b.N; i++ {
				native, mv, overhead, recs = bench.NginxCell(2, 8, 100, true, batch)
			}
			b.ReportMetric(native, "native-req/s")
			b.ReportMetric(mv, "mvee-req/s")
			b.ReportMetric(overhead*100, "overhead-%")
			b.ReportMetric(recs, "records/req")
			if batch && recs >= 4 {
				b.Fatalf("replication bill: %.2f records/req on the keep-alive static page, want < 4", recs)
			}
		})
	}
}

// fleetPools are the pool sizes the fleet benchmarks sweep.
var fleetPools = []int{1, 4, 16}

// startBenchFleet builds a warm fleet of `pool` webserver sessions in the
// given serving mode ("" = thread pool, "evented", "evented-nobatch",
// "prefork", "prefork-mt" = 2 worker processes x 4 accept threads each).
func startBenchFleet(b *testing.B, pool int, vulnerable bool, mode string) *fleet.Fleet {
	b.Helper()
	cfg := webserver.Config{Port: 8080, PoolThreads: 4, InstrumentCustomSync: true,
		Vulnerable: vulnerable, PageSize: 1024,
		Evented:        mode == "evented" || mode == "evented-nobatch",
		NoBatchWakeups: mode == "evented-nobatch",
		Prefork:        mode == "prefork" || mode == "prefork-mt", Workers: 4}
	if mode == "prefork-mt" {
		cfg.Workers, cfg.WorkerThreads = 2, 4
	}
	f, err := fleet.New(webserver.FleetConfig(cfg, core.Options{
		Variants: 2, Agent: agent.WallOfClocks, ASLR: true, DCL: true, Seed: 5, MaxThreads: 64,
	}, pool))
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// driveFleet pushes n requests through the gateway with `clients`
// concurrent submitters and returns how many succeeded.
func driveFleet(f *fleet.Fleet, clients, n int) uint64 {
	var wg sync.WaitGroup
	per := n / clients
	if per == 0 {
		per = 1
	}
	issued := 0
	results := make(chan int, clients)
	for c := 0; c < clients && issued < n; c++ {
		take := per
		if c == clients-1 {
			take = n - issued
		}
		issued += take
		wg.Add(1)
		go func(take int) {
			defer wg.Done()
			good := 0
			for r := 0; r < take; r++ {
				if _, err := f.Do([]byte("GET /")); err == nil {
					good++
				}
			}
			results <- good
		}(take)
	}
	wg.Wait()
	close(results)
	total := uint64(0)
	for g := range results {
		total += uint64(g)
	}
	return total
}

// BenchmarkFleetThroughput measures gateway throughput over pool sizes
// 1/4/16 — the scaling curve from one MVEE session to a serving pool.
// Each op is one request through the gateway (16 concurrent clients).
func BenchmarkFleetThroughput(b *testing.B) {
	for _, pool := range fleetPools {
		pool := pool
		b.Run(fmt.Sprintf("pool-%d", pool), func(b *testing.B) {
			b.ReportAllocs()
			f := startBenchFleet(b, pool, false, "")
			defer f.Close()
			b.ResetTimer()
			start := time.Now()
			good := driveFleet(f, 16, b.N)
			el := time.Since(start).Seconds()
			b.StopTimer()
			if el > 0 {
				b.ReportMetric(float64(good)/el, "req/s")
			}
			s := f.Stats()
			b.ReportMetric(float64(s.Latency.Quantile(0.5)), "p50-ns")
			b.ReportMetric(float64(s.Latency.Quantile(0.99)), "p99-ns")
		})
	}
}

// BenchmarkFleetDivergenceChurn measures throughput while an adversary
// keeps burning sessions: a layout-targeted exploit payload is injected
// every 25ms, so the pool continuously quarantines and respawns members
// under load. The interesting metrics are the surviving request rate and
// the recycle volume.
func BenchmarkFleetDivergenceChurn(b *testing.B) {
	for _, pool := range fleetPools {
		pool := pool
		b.Run(fmt.Sprintf("pool-%d", pool), func(b *testing.B) {
			b.ReportAllocs()
			f := startBenchFleet(b, pool, true, "")
			defer f.Close()
			gadget := variant.NewSpace(0, variant.Options{ASLR: true, DCL: true, Seed: 5}).AllocCode(64)
			payload := []byte(fmt.Sprintf("POST /upload %x", gadget))
			stop := make(chan struct{})
			var attackWG sync.WaitGroup
			attackWG.Add(1)
			go func() {
				defer attackWG.Done()
				tick := time.NewTicker(25 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						f.Do(payload)
					}
				}
			}()
			b.ResetTimer()
			start := time.Now()
			good := driveFleet(f, 16, b.N)
			el := time.Since(start).Seconds()
			b.StopTimer()
			close(stop)
			attackWG.Wait()
			if el > 0 {
				b.ReportMetric(float64(good)/el, "req/s")
			}
			s := f.Stats()
			b.ReportMetric(float64(s.Recycled), "recycled")
			b.ReportMetric(float64(s.Divergences), "divergences")
		})
	}
}

// BenchmarkPollServer measures the evented serving mode through the fleet
// gateway: each session multiplexes all of its connections on ONE thread
// via replicated SysPoll (the nginx event-loop model), where
// BenchmarkFleetThroughput's sessions burn a vthread per connection. The
// comparison between the two benchmarks is the evented-vs-threaded serving
// trade-off under the MVEE; req/s and the latency quantiles are directly
// comparable cells.
func BenchmarkPollServer(b *testing.B) {
	run := func(name, mode string, pool int) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			f := startBenchFleet(b, pool, false, mode)
			defer f.Close()
			b.ResetTimer()
			start := time.Now()
			good := driveFleet(f, 16, b.N)
			el := time.Since(start).Seconds()
			b.StopTimer()
			if el > 0 {
				b.ReportMetric(float64(good)/el, "req/s")
			}
			s := f.Stats()
			b.ReportMetric(float64(s.Latency.Quantile(0.5)), "p50-ns")
			b.ReportMetric(float64(s.Latency.Quantile(0.99)), "p99-ns")
		})
	}
	for _, pool := range []int{1, 4} {
		run(fmt.Sprintf("pool-%d", pool), "evented", pool)
	}
	// The A-B control: identical single-session evented serving with the
	// poll-wakeup batching disabled, so every ready recv pays its own
	// replication handoff. Comparing this cell to pool-1 isolates what the
	// multi-record batch buys on the gateway's request mix.
	run("pool-1-nobatch", "evented-nobatch", 1)
}

// BenchmarkPreforkServer measures the multi-process serving mode through
// the fleet gateway: each session's parent forks 4 worker processes that
// accept on the shared listener (the nginx/Apache prefork model), so the
// comparison against BenchmarkFleetThroughput (thread pool) and
// BenchmarkPollServer (evented) completes the concurrency-model triangle —
// same request mix, same gateway, req/s and latency quantiles directly
// comparable. Worker syscalls ride the same replication rings as vthreads;
// the added cost is the fork-time bookkeeping, which is off the serving
// path.
func BenchmarkPreforkServer(b *testing.B) {
	run := func(name, mode string, pool int) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			f := startBenchFleet(b, pool, false, mode)
			defer f.Close()
			b.ResetTimer()
			start := time.Now()
			good := driveFleet(f, 16, b.N)
			el := time.Since(start).Seconds()
			b.StopTimer()
			if el > 0 {
				b.ReportMetric(float64(good)/el, "req/s")
			}
			s := f.Stats()
			b.ReportMetric(float64(s.Latency.Quantile(0.5)), "p50-ns")
			b.ReportMetric(float64(s.Latency.Quantile(0.99)), "p99-ns")
		})
	}
	for _, pool := range []int{1, 4} {
		run(fmt.Sprintf("pool-%d", pool), "prefork", pool)
	}
	// The multi-threaded-worker cell: same 8-way accept concurrency as
	// pool-1 (2 processes x 4 threads vs 4 processes x 1), isolating the
	// cost of intra-process thread accounting on the accept path.
	run("pool-1-workers-2x4", "prefork-mt", 1)
}

// BenchmarkHotRestart measures the epoch-based zero-downtime reload: each
// op is one fleet-wide SIGHUP sweep on a loaded prefork session — fork a
// freshly re-randomized worker generation, take over the listener, drain
// the old epoch. ns/op is the signal-to-new-epoch-live latency; the
// "drops" metric counts client requests that failed during the restarts
// and must stay 0 (that is the zero-downtime claim).
func BenchmarkHotRestart(b *testing.B) {
	cfg := webserver.Config{Port: 8080, PageSize: 1024, InstrumentCustomSync: true,
		Prefork: true, Workers: 2, WorkerThreads: 2}
	// Tids are never recycled, so budget every generation this run will
	// ever fork (b.N reloads + the initial epoch, with headroom).
	f, err := fleet.New(webserver.FleetConfig(cfg, core.Options{
		Variants: 2, Agent: agent.WallOfClocks, ASLR: true, DCL: true, Seed: 5,
		MaxThreads: (b.N+2)*cfg.Workers*cfg.WorkerThreads*2 + 16,
	}, 1))
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	var drops, good atomic.Uint64
	stop := make(chan struct{})
	var loadWG sync.WaitGroup
	for c := 0; c < 4; c++ {
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := f.Do([]byte("GET /")); err != nil {
					drops.Add(1)
				} else {
					good.Add(1)
				}
			}
		}()
	}
	// Warm: first page served before the clock starts.
	if _, err := f.Do([]byte("GET /")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := f.Reload(); n != 1 {
			b.Fatalf("reload %d accepted by %d members, want 1", i, n)
		}
		for f.Snapshot().Members[0].Epoch < i+1 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	b.StopTimer()
	close(stop)
	loadWG.Wait()
	b.ReportMetric(float64(drops.Load()), "drops")
	b.ReportMetric(float64(good.Load())/float64(b.N), "req-per-reload")
	if drops.Load() != 0 {
		b.Fatalf("%d requests dropped across %d hot restarts, want 0", drops.Load(), b.N)
	}
}

// BenchmarkAgentMicro measures the raw per-op cost of each agent with 1
// master + 1 slave threads hammering a single variable — the ablation for
// the design choices in §4.5 (shared buffer vs per-thread buffers).
func BenchmarkAgentMicro(b *testing.B) {
	for _, k := range fig5Agents {
		k := k
		b.Run(agentTag(k), func(b *testing.B) {
			b.ReportAllocs()
			ex := agent.NewExchange(k, agent.Config{Slaves: 1, MaxThreads: 2, BufCap: 4096, WallSize: 4096})
			defer ex.Stop()
			m := ex.MasterAgent()
			s := ex.SlaveAgent(0)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < b.N; i++ {
					s.Before(0, 0x9000)
					s.After(0, 0x9000)
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Before(0, 0x1000)
				m.After(0, 0x1000)
			}
			<-done
		})
	}
}

// BenchmarkWallClockAssignment measures the WoC hash (ClockOf) — it sits on
// the master's critical path for every sync op. A replaying slave drains
// the sync buffer concurrently: without one, any b.N past the buffer
// capacity stalls the master on back-pressure forever (the old Gosched
// tail spun invisibly there; the parked wait turns it into a detected
// deadlock, which is how this benchmark's missing consumer was found).
func BenchmarkWallClockAssignment(b *testing.B) {
	b.ReportAllocs()
	ex := agent.NewExchange(agent.WallOfClocks, agent.Config{Slaves: 1, MaxThreads: 1, BufCap: 64, WallSize: 4096})
	defer ex.Stop()
	m := ex.MasterAgent()
	s := ex.SlaveAgent(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			addr := uint64(0x1000 + i*64)
			s.Before(0, addr)
			s.After(0, addr)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(0x1000 + i*64)
		m.Before(0, addr)
		m.After(0, addr)
	}
	<-done
}

// BenchmarkDMTBaseline measures the token-passing DMT scheduler (§2.1
// comparison point): cost of one Acquire/Charge round-trip between two
// threads.
func BenchmarkDMTBaseline(b *testing.B) {
	// Covered in internal/dmt tests for correctness; here: throughput of
	// the token hand-off under the Go scheduler.
	b.Run("2-threads", func(b *testing.B) {
		b.ReportAllocs()
		benchDMT(b, 2)
	})
	b.Run("4-threads", func(b *testing.B) {
		b.ReportAllocs()
		benchDMT(b, 4)
	})
}

func benchDMT(b *testing.B, threads int) {
	// local import-free micro-harness over internal/dmt
	s := newDMT(threads)
	done := make(chan struct{}, threads)
	for tid := 1; tid < threads; tid++ {
		go func(tid int) {
			for i := 0; i < b.N; i++ {
				s.Acquire(tid)
				s.Charge(tid, 1)
			}
			s.Exit(tid)
			done <- struct{}{}
		}(tid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire(0)
		s.Charge(0, 1)
	}
	s.Exit(0)
	for tid := 1; tid < threads; tid++ {
		<-done
	}
}

// newDMT adapts internal/dmt for the benchmark above.
func newDMT(threads int) *dmt.Scheduler { return dmt.New(threads, 1) }

// BenchmarkWallSizeAblation sweeps the wall-of-clocks size on a
// fine-grained-locking workload: small walls force hash collisions, i.e.
// unnecessary serialization (§4.5's stated trade-off of static clock
// allocation).
func BenchmarkWallSizeAblation(b *testing.B) {
	w, err := workload.ByName("fluidanimate")
	if err != nil {
		b.Fatal(err)
	}
	for _, wall := range []int{1, 16, 256, 4096} {
		wall := wall
		b.Run(fmt.Sprintf("wall-%d", wall), func(b *testing.B) {
			b.ReportAllocs()
			var last *core.Result
			for i := 0; i < b.N; i++ {
				last = core.Run(core.Options{
					Variants: 2, Agent: agent.WallOfClocks, ASLR: true,
					WallSize: wall, MaxThreads: 64, Seed: 3,
				}, w.Build(workload.Params{Workers: 4, Units: 20000}))
				if last.Divergence != nil {
					b.Fatalf("diverged: %v", last.Divergence)
				}
			}
			b.ReportMetric(float64(last.Stalls), "stalls")
		})
	}
}

// BenchmarkPolicyComparison contrasts strict lockstep with the relaxed
// security-sensitive policy on the syscall-heaviest workload (§5.1 tested
// "a variety of monitoring policies").
func BenchmarkPolicyComparison(b *testing.B) {
	w, err := workload.ByName("dedup")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		policy monitor.Policy
	}{
		{"strict", monitor.PolicyStrictLockstep},
		{"sensitive-only", monitor.PolicySecuritySensitive},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := core.Run(core.Options{
					Variants: 2, Agent: agent.WallOfClocks, ASLR: true,
					Policy: tc.policy, MaxThreads: 64, Seed: 3,
				}, w.Build(workload.Params{Workers: 4}))
				if res.Divergence != nil {
					b.Fatalf("diverged: %v", res.Divergence)
				}
			}
		})
	}
}

// BenchmarkReplicationHotPath isolates the master-publish → slave-validate
// syscall replication path — no workload, no fleet, just one master thread
// and one slave thread driving the monitor as fast as it goes. This is the
// path the PR-2 tentpole makes allocation-free and batched: in steady state
// every cell must report 0 allocs/op for payload-free calls and for
// payloads up to monitor.InlinePayload (64) bytes.
//
//	strict   every call is a full pre-execution lockstep rendezvous
//	relaxed  only security-sensitive calls lockstep; the rest run ahead
//	payload-0    getpid (ordered, replicated, no payload)
//	payload-64   pwrite of 64 bytes at offset 0 (sensitive, inline payload)
//	telemetry=on/off  A-B for the PR-6 matrix + flight recorder: the `on`
//	                  cells must match `off` within ~1 ns/op and stay 0 allocs
func BenchmarkReplicationHotPath(b *testing.B) {
	policies := []struct {
		name   string
		policy monitor.Policy
	}{
		{"strict", monitor.PolicyStrictLockstep},
		{"relaxed", monitor.PolicySecuritySensitive},
	}
	for _, pc := range policies {
		for _, payload := range []int{0, 64} {
			for _, tel := range []bool{false, true} {
				pc, payload, tel := pc, payload, tel
				b.Run(fmt.Sprintf("%s/payload-%d/telemetry=%s", pc.name, payload, onOff(tel)), func(b *testing.B) {
					b.ReportAllocs()
					k := kernel.New()
					procs := []*kernel.Proc{
						k.NewProc(0x1000_0000, 0x7000_0000),
						k.NewProc(0x2000_0000, 0x7100_0000),
					}
					m := monitor.New(k, procs, monitor.Config{
						MaxThreads: 2, RingCap: 1024, Policy: pc.policy, Telemetry: tel,
					})
					data := make([]byte, payload)
					for i := range data {
						data[i] = byte(i)
					}
					// Setup (both variants, like real lockstepped threads):
					// open the target file and pre-size it so the benchmarked
					// pwrites never grow the inode.
					setup := func(v int) uint64 {
						fd := m.Invoke(v, 0, kernel.Call{
							Nr:   kernel.SysOpen,
							Args: [6]uint64{kernel.OCreat | kernel.ORdwr},
							Data: []byte("/bench-hotpath"),
						})
						m.Invoke(v, 0, kernel.Call{
							Nr: kernel.SysPwrite, Args: [6]uint64{fd.Val, 0},
							Data: make([]byte, 64),
						})
						return fd.Val
					}
					loop := func(v int, fd uint64) {
						for i := 0; i < b.N; i++ {
							if payload == 0 {
								m.Invoke(v, 0, kernel.Call{Nr: kernel.SysGetpid})
							} else {
								m.Invoke(v, 0, kernel.Call{
									Nr: kernel.SysPwrite, Args: [6]uint64{fd, 0}, Data: data,
								})
							}
						}
					}
					var slaveFd uint64
					ready := make(chan struct{})
					done := make(chan struct{})
					go func() {
						defer close(done)
						slaveFd = setup(1)
						close(ready)
						loop(1, slaveFd)
					}()
					masterFd := setup(0)
					<-ready
					b.ResetTimer()
					loop(0, masterFd)
					<-done
					b.StopTimer()
					if d := m.Divergence(); d != nil {
						b.Fatalf("diverged: %v", d)
					}
				})
			}
		}
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// BenchmarkDeadlockDetectorOverhead prices core.Options.DetectDeadlocks on
// the replication hot path: the same master+slave Invoke loop as
// BenchmarkReplicationHotPath (strict policy, telemetry off), with the
// master proc armed with a live BlockBoard — registered thread, watcher
// goroutine running — exactly as a DetectDeadlocks session arms it. Armed
// but idle (nothing ever parks, which is the steady state of a healthy
// server), the detector must cost the hot path zero allocations; the
// detector=off cells are the A-B control. CI gates the allocs/op column
// at 0 (make bench-smoke).
func BenchmarkDeadlockDetectorOverhead(b *testing.B) {
	for _, armed := range []bool{false, true} {
		for _, payload := range []int{0, 64} {
			armed, payload := armed, payload
			b.Run(fmt.Sprintf("detector=%s/payload-%d", onOff(armed), payload), func(b *testing.B) {
				b.ReportAllocs()
				k := kernel.New()
				procs := []*kernel.Proc{
					k.NewProc(0x1000_0000, 0x7000_0000),
					k.NewProc(0x2000_0000, 0x7100_0000),
				}
				m := monitor.New(k, procs, monitor.Config{
					MaxThreads: 2, RingCap: 1024, Policy: monitor.PolicyStrictLockstep,
				})
				if armed {
					board := kernel.NewBlockBoard(2, func([]kernel.BlockedSite) {})
					defer board.Close()
					procs[0].SetBlockBoard(board)
					board.ThreadStart(0)
					defer board.ThreadExit(0)
				}
				data := make([]byte, payload)
				for i := range data {
					data[i] = byte(i)
				}
				setup := func(v int) uint64 {
					fd := m.Invoke(v, 0, kernel.Call{
						Nr:   kernel.SysOpen,
						Args: [6]uint64{kernel.OCreat | kernel.ORdwr},
						Data: []byte("/bench-deadlock"),
					})
					m.Invoke(v, 0, kernel.Call{
						Nr: kernel.SysPwrite, Args: [6]uint64{fd.Val, 0},
						Data: make([]byte, 64),
					})
					return fd.Val
				}
				loop := func(v int, fd uint64) {
					for i := 0; i < b.N; i++ {
						if payload == 0 {
							m.Invoke(v, 0, kernel.Call{Nr: kernel.SysGetpid})
						} else {
							m.Invoke(v, 0, kernel.Call{
								Nr: kernel.SysPwrite, Args: [6]uint64{fd, 0}, Data: data,
							})
						}
					}
				}
				var slaveFd uint64
				ready := make(chan struct{})
				done := make(chan struct{})
				go func() {
					defer close(done)
					slaveFd = setup(1)
					close(ready)
					loop(1, slaveFd)
				}()
				masterFd := setup(0)
				<-ready
				b.ResetTimer()
				loop(0, masterFd)
				<-done
				b.StopTimer()
				if d := m.Divergence(); d != nil {
					b.Fatalf("diverged: %v", d)
				}
			})
		}
	}
}

// BenchmarkTelemetryMatrix prices the bare telemetry primitives the
// monitor adds to every replicated call, without the monitor around them:
// the per-call atomic count (Inc into a thread-sharded bank), the same
// with the 1-in-64 latency sample amortized in, and a flight-recorder
// append. All must be allocation-free; Inc alone is the ~1 ns/op figure
// quoted in DESIGN.md.
func BenchmarkTelemetryMatrix(b *testing.B) {
	b.Run("inc", func(b *testing.B) {
		b.ReportAllocs()
		m := telemetry.NewMatrix(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Inc(0, 0, kernel.SysGetpid)
		}
	})
	b.Run("inc-sampled", func(b *testing.B) {
		b.ReportAllocs()
		m := telemetry.NewMatrix(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := m.Inc(0, 0, kernel.SysGetpid)
			if telemetry.SampleDue(c) {
				t0 := time.Now()
				m.Observe(0, kernel.SysGetpid, time.Since(t0))
			}
		}
	})
	b.Run("flight-append", func(b *testing.B) {
		b.ReportAllocs()
		f := telemetry.NewFlight(telemetry.FlightCap)
		args := [6]uint64{1, 2, 3}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Append(kernel.SysGetpid, 0, telemetry.Digest(&args, nil), uint64(i), 0)
		}
	})
}

// BenchmarkLaggingSlaveWait measures what a far-behind waiter costs —
// the PR-3 tentpole's target. A producer/consumer pair streams b.N events
// through a ring at full speed while "lagging slaves" wait for an event
// that is only published after the run (the shape of a slave stuck on a
// record the master has not produced yet):
//
//	parked   the laggards park on the ring's futex wait set — a handful
//	         of poll iterations each, then zero CPU until woken
//	gosched  the pre-parking behavior: the backoff tail yields forever,
//	         so every laggard stays runnable, burning a scheduler pass
//	         and a poll per iteration for the whole run
//
// laggard-polls/op is the waste: poll-loop iterations the laggards burned
// per produced event. Parked waits hold it near zero; the Gosched tail
// scales it with run length (and, on a loaded machine, those polls are
// timeslices stolen from the variants doing real work — wall-clock ns/op
// shows that part only when cores are contended, so the poll count is the
// portable signal).
func BenchmarkLaggingSlaveWait(b *testing.B) {
	for _, mode := range []struct {
		name string
		park bool
	}{{"parked", true}, {"gosched", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			prevPark := ring.SetParking(mode.park)
			defer ring.SetParking(prevPark)
			prevProcs := runtime.GOMAXPROCS(2)
			defer runtime.GOMAXPROCS(prevProcs)
			b.ReportAllocs()

			const laggards = 8
			release := ring.NewLog[int](2, 1)
			var polls atomic.Uint64
			var lagWG sync.WaitGroup
			for g := 0; g < laggards; g++ {
				lagWG.Add(1)
				go func() {
					defer lagWG.Done()
					n := uint64(0)
					for spins := 0; !release.Ready(0); spins++ {
						n++
						if ring.ParkDue(spins) {
							pk := release.Parker()
							gen := pk.Prepare()
							if release.Ready(0) {
								pk.Cancel()
								break
							}
							pk.Park(gen)
							continue
						}
						ring.Backoff(spins)
					}
					polls.Add(n)
				}()
			}

			l := ring.NewLog[int](1024, 1)
			var consWG sync.WaitGroup
			consWG.Add(1)
			go func() {
				defer consWG.Done()
				var batch [64]int
				seen := 0
				for spins := 0; seen < b.N; {
					n := l.TryConsumeBatch(0, batch[:])
					if n == 0 {
						ring.Backoff(spins)
						spins++
						continue
					}
					spins = 0
					seen += n
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Append(i)
			}
			consWG.Wait()
			b.StopTimer()
			release.Append(1)
			lagWG.Wait()
			b.ReportMetric(float64(polls.Load())/float64(b.N), "laggard-polls/op")
		})
	}
}

// BenchmarkConnectPath measures the serving path's per-connection kernel
// cost outside the MVEE machinery: connect, one request/response exchange
// against a raw-kernel echo server, close. The pooled connection objects
// (pipes with retained buffers, recycled socket endpoints) and the
// server's reusable recv buffer (Call.Buf: the kernel copies the request
// into caller memory instead of allocating an exact-sized result) are
// what hold this at 0 allocs/op — the CI bench-smoke gate enforces it.
// Before pooling every cycle paid for two pipes, two conds, a socket
// endpoint, and fresh stream buffers; before Call.Buf it still paid one
// allocation per recv.
func BenchmarkConnectPath(b *testing.B) {
	b.ReportAllocs()
	k := kernel.New()
	p := k.NewProc(0x1000_0000, 0x7000_0000)
	sfd := k.Do(p, kernel.Call{Nr: kernel.SysSocket})
	if !sfd.Ok() {
		b.Fatalf("socket: %v", sfd.Err)
	}
	if r := k.Do(p, kernel.Call{Nr: kernel.SysListen, Args: [6]uint64{sfd.Val, 8088, 128}}); !r.Ok() {
		b.Fatalf("listen: %v", r.Err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		scratch := make([]byte, 4096)
		for {
			c := k.Do(p, kernel.Call{Nr: kernel.SysAccept, Args: [6]uint64{sfd.Val}})
			if !c.Ok() {
				return
			}
			msg := k.Do(p, kernel.Call{Nr: kernel.SysRecv, Args: [6]uint64{c.Val, 4096}, Buf: scratch})
			if msg.Ok() && len(msg.Data) > 0 {
				k.Do(p, kernel.Call{Nr: kernel.SysSend, Args: [6]uint64{c.Val}, Data: msg.Data})
			}
			k.Do(p, kernel.Call{Nr: kernel.SysClose, Args: [6]uint64{c.Val}})
		}
	}()
	req := []byte("GET /bench")
	buf := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc, errno := k.Connect(8088)
		if errno != kernel.OK {
			b.Fatalf("connect: %v", errno)
		}
		cc.Write(req)
		if n, err := cc.Read(buf); err != nil || n == 0 {
			b.Fatalf("read: n=%d err=%v", n, err)
		}
		cc.Close()
	}
	b.StopTimer()
	k.CloseListener(8088)
	<-done
}

// BenchmarkChaosOverhead prices the chaos plane's seam when it is NOT
// firing — the cost every deployment pays whether or not a fault plan is
// loaded. disabled = no injector installed: Kernel.Do pays one nil check.
// armed-miss = a listener-only plan is installed and consulted on every
// eligible call but never matches: one atomic counter draw plus a rule
// scan per call. Both cells must stay at 0 allocs/op — the CI bench-smoke
// gate enforces it — so compiling the chaos plane in costs nothing when
// it is off.
//
//	sleep0      nanosleep(0): the injector consult with no fd lookup
//	pipe-write  zero-byte pipe write: adds the descriptor classification
func BenchmarkChaosOverhead(b *testing.B) {
	plan, err := chaos.Parse("target=listener:9999 error=50% seed=1")
	if err != nil {
		b.Fatal(err)
	}
	cells := []struct {
		name string
		inj  kernel.FaultInjector
	}{
		{"disabled", nil},
		{"armed-miss", chaos.New(plan)},
	}
	for _, c := range cells {
		c := c
		b.Run("sleep0/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			k := kernel.New()
			if c.inj != nil {
				k.SetInjector(c.inj)
			}
			p := k.NewProc(0x1000_0000, 0x7000_0000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Do(p, kernel.Call{Nr: kernel.SysNanosleep})
			}
		})
		b.Run("pipe-write/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			k := kernel.New()
			if c.inj != nil {
				k.SetInjector(c.inj)
			}
			p := k.NewProc(0x1000_0000, 0x7000_0000)
			pr := k.Do(p, kernel.Call{Nr: kernel.SysPipe2})
			if !pr.Ok() {
				b.Fatalf("pipe2: %v", pr.Err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Do(p, kernel.Call{Nr: kernel.SysWrite, Args: [6]uint64{pr.Val2}})
			}
		})
	}
}
